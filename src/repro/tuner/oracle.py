"""The tuner's cost oracle: batched, cached, parallel simulation.

Candidates are scored by compiling and simulating them through
``Kernel.simulate(mode="orbit")`` — the orbit-compressed executor PRs
1–2 made fast precisely so it can be queried thousands of times. Three
layers keep re-evaluation cheap:

* the process-global :data:`~repro.bench.cache.SIM_CACHE` memoizes
  ``(plan, machine, params, mode)`` so identical candidates (canonical
  representatives, repeated rungs) simulate once;
* batches fan out over the existing fork-pool driver
  (:mod:`repro.bench.parallel`), whose workers inherit the warm cache
  and ship their deltas back;
* a persistent :class:`TuningLedger` (JSON, written atomically) maps
  ``workload-signature/decision`` to the simulated summary, so a
  re-tune — same workload, same params — replays from disk without
  simulating anything.
"""

from __future__ import annotations

import copy
import hashlib
import json
import math
import os
import re
import signal
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.prune import STATIC_OOM, prune_reason
from repro.bench.cache import (
    SIM_CACHE,
    cluster_signature,
    kernel_fingerprint,
    params_key,
)
from repro.bench.perf_log import locked, write_atomic
from repro.bench.parallel import register_sweep, run_points
from repro.core.kernel import compile_kernel
from repro.formats.distribution import Broadcast, DimName, Fixed
from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.obs.metrics import METRICS
from repro.obs.spans import span
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN, MachineParams
from repro.tuner.space import Decision, formats_for, realize
from repro.util.errors import OutOfMemoryError, ReproError

#: Cost assigned to candidates that OOM or fail to compile: they sort
#: after every feasible candidate but remain in the ledger.
INFEASIBLE = float("inf")


# ----------------------------------------------------------------------
# Cross-candidate incremental simulation.
# ----------------------------------------------------------------------

_LEAF_RE = re.compile(r"leaf\[[^\]]*\]")


def phase_fingerprint(kernel, check_capacity: bool, mode: str) -> str:
    """Identity of a candidate's *phase structure*.

    The plan's printed form pins the launch grid, the per-phase request
    structure (communication points, loop extents, access expressions —
    the bounds analysis is a pure function of these), reductions, and
    the tensor formats; the substituted leaf kernel is masked out
    because it never changes the executed trace — only how the work is
    priced. Candidates that differ only in leaf substitution therefore
    share a fingerprint, and beam rungs re-price a cached sub-trace
    instead of re-executing it.
    """
    fp = kernel_fingerprint(kernel)
    raw = "|".join(
        str(x)
        for x in (
            _LEAF_RE.sub("leaf[*]", fp[0]),
            fp[1:],
            check_capacity,
            mode,
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


def _leaf_kernels(plan) -> List[Optional[str]]:
    """Substituted leaf kernel names, in plan order."""
    node = plan.root
    while not hasattr(node, "assigns"):
        node = node.body
    return [node.kernel]


class _SkeletonStore:
    """Per-process LRU of priced sub-traces, keyed by phase structure.

    Values are ``("ok", TraceSkeleton, leaf kernels)`` or ``("oom",
    error args)``; skeletons are machine-size independent (per-class
    work rows plus one pre-priced communication float per step), so the
    store stays small.
    """

    def __init__(self, cap: int = 256):
        self.cap = cap
        self._store: "OrderedDict[str, tuple]" = OrderedDict()

    def get(self, key: str):
        hit = self._store.get(key)
        if hit is not None:
            self._store.move_to_end(key)
        return hit

    def put(self, key: str, value):
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.cap:
            self._store.popitem(last=False)

    def clear(self):
        self._store.clear()

    def __len__(self):
        return len(self._store)


#: Process-global sub-trace store (forked oracle workers inherit it).
SKELETONS = _SkeletonStore()


def oracle_simulate(kernel, params: MachineParams, check_capacity: bool,
                    mode: str, pkey: Optional[str] = None):
    """Simulate a candidate, reusing priced sub-traces across candidates.

    Returns ``(report, executed, repriced)``: ``executed`` marks a real
    trace execution, ``repriced`` a phase-structure hit re-priced under
    this candidate's leaf kernel (see
    :meth:`~repro.sim.costmodel.CostModel.price_skeleton`). Raises
    :class:`OutOfMemoryError` exactly like ``SIM_CACHE.simulate``.
    """
    hit = SIM_CACHE.cached(kernel, params, check_capacity, mode)
    if hit is not None:
        outcome, payload = hit
        if outcome == "oom":
            raise OutOfMemoryError(*payload)
        return payload, False, False
    if pkey is None:
        pkey = phase_fingerprint(kernel, check_capacity, mode)
    skey = f"{pkey}/{params_key(params)}"
    cached = SKELETONS.get(skey)
    if cached is not None:
        if cached[0] == "oom":
            SIM_CACHE.put(
                kernel, params, check_capacity, mode, ("oom", cached[1])
            )
            raise OutOfMemoryError(*cached[1])
        _tag, skeleton, old_leaves = cached
        new_leaves = _leaf_kernels(kernel.plan)
        kernel_map = {}
        consistent = len(old_leaves) == len(new_leaves)
        if consistent:
            for old, new in zip(old_leaves, new_leaves):
                if kernel_map.setdefault(old, new) != new:
                    consistent = False
                    break
        if consistent:
            model = CostModel(kernel.machine.cluster, params)
            report = model.price_skeleton(skeleton, kernel_map)
            SIM_CACHE.put(
                kernel, params, check_capacity, mode, ("ok", report)
            )
            return report, False, True
    model = CostModel(kernel.machine.cluster, params)
    try:
        result = kernel.trace(check_capacity=check_capacity, mode=mode)
    except OutOfMemoryError as err:
        args = (err.memory_name, err.needed_bytes, err.capacity_bytes)
        SKELETONS.put(skey, ("oom", args))
        SIM_CACHE.put(kernel, params, check_capacity, mode, ("oom", args))
        raise
    skeleton = model.skeleton_of(result.trace)
    report = model.price_skeleton(skeleton)
    SKELETONS.put(
        skey, ("ok", skeleton, _leaf_kernels(kernel.plan))
    )
    SIM_CACHE.put(kernel, params, check_capacity, mode, ("ok", report))
    return report, True, False


@dataclass(frozen=True)
class EvalOutcome:
    """One candidate's simulated summary (picklable, ledger-shaped).

    ``structure`` / ``executed`` / ``repriced`` describe *how* the
    outcome was obtained (phase-structure fingerprint, real trace
    execution vs. sub-trace re-pricing); they ride back from forked
    workers for the oracle's incrementality accounting but never enter
    the ledger records (ledgers must be byte-identical across
    equal-seed runs, and cache hits vary between processes).
    """

    decision: Decision
    cost: float                 # simulated seconds; inf when infeasible
    oom: bool = False
    error: str = ""
    comm_time: float = 0.0
    compute_time: float = 0.0
    inter_node_bytes: float = 0.0
    max_memory_bytes: float = 0.0
    #: Decided by the static analyzer without simulating (see
    #: :mod:`repro.analysis.prune`). Pruned candidates are never
    #: counted as oracle *errors* even when ``error`` carries the
    #: pruning reason.
    pruned: bool = False
    #: Bulk-synchronous phases the candidate executes (0 when the
    #: candidate never simulated). The expected-cost objective prices
    #: failure exposure and checkpoint overhead per phase.
    num_steps: int = 0
    structure: str = field(default="", compare=False)
    executed: bool = field(default=False, compare=False)
    repriced: bool = field(default=False, compare=False)

    @property
    def feasible(self) -> bool:
        return self.cost != INFEASIBLE

    def to_record(self) -> Dict:
        return {
            "decision": self.decision.encode(),
            "cost": self.cost if self.feasible else "infeasible",
            "oom": self.oom,
            "error": self.error,
            "comm_time": self.comm_time,
            "compute_time": self.compute_time,
            "inter_node_bytes": self.inter_node_bytes,
            "max_memory_bytes": self.max_memory_bytes,
            "pruned": self.pruned,
            "num_steps": self.num_steps,
        }

    @staticmethod
    def from_record(record: Dict) -> "EvalOutcome":
        cost = record["cost"]
        return EvalOutcome(
            decision=Decision.decode(record["decision"]),
            cost=INFEASIBLE if cost in ("infeasible", "oom") else float(cost),
            oom=bool(record.get("oom", False)),
            error=record.get("error", ""),
            comm_time=record.get("comm_time", 0.0),
            compute_time=record.get("compute_time", 0.0),
            inter_node_bytes=record.get("inter_node_bytes", 0.0),
            max_memory_bytes=record.get("max_memory_bytes", 0.0),
            pruned=bool(record.get("pruned", False)),
            num_steps=int(record.get("num_steps", 0)),
        )


def workload_signature(
    assignment: Assignment,
    cluster: Cluster,
    params: MachineParams,
    memory: MemoryKind,
    mode: str,
    check_capacity: bool,
) -> str:
    """Stable identity of one tuning problem (the ledger's namespace)."""
    tensors = ";".join(
        f"{t.name}:{t.shape}:{t.dtype}" for t in assignment.tensors()
    )
    raw = "|".join(
        str(x)
        for x in (
            repr(assignment),
            tensors,
            cluster_signature(cluster),
            params_key(params),
            memory.value,
            mode,
            check_capacity,
        )
    )
    return hashlib.sha256(raw.encode()).hexdigest()[:16]


class TuningLedger:
    """Persistent candidate -> summary store (incremental re-tunes).

    The ledger is a JSON object ``{"version": 1, "entries": {key:
    record}}`` with keys ``<workload signature>/<decision encoding>``.
    The serving layer (:mod:`repro.serve`) additionally stores finished
    canonical answers under an ``"answers"`` object keyed by request
    fingerprint (see :mod:`repro.api`); the key is omitted entirely
    while empty, so purely tuner-written ledgers keep their historical
    byte layout.
    Writes go through a temporary file and ``os.replace`` so a crashed
    or concurrent tune can never truncate it; entries are sorted on
    save so equal tuning runs produce byte-identical files.

    Loads are crash-hardened the same way the perf log's are: a torn or
    corrupt file (killed writer on a filesystem without atomic replace,
    stray editor, disk-full truncation) is *salvaged* — every entry
    record that still parses is kept — and the damaged original is
    quarantined to ``<path>.corrupt`` for inspection, so one bad byte
    never silently discards a night of tuning.
    """

    VERSION = 1

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else None
        self.entries: Dict[str, Dict] = {}
        self.hits = 0
        self.misses = 0
        #: Saves that should have persisted but could not (an unwritable
        #: path — counted so callers like the CLI can fail loudly; a
        #: pathless in-memory ledger never counts).
        self.save_failures = 0
        #: Entries recovered from a corrupt file at load time (the
        #: original was quarantined to ``<path>.corrupt``).
        self.salvaged = 0
        #: Canonical serving answers keyed by request fingerprint
        #: (:meth:`repro.api.ScheduleRequest.fingerprint`).
        self.answers: Dict[str, Dict] = {}
        if self.path is not None:
            self.entries, self.answers = self._read()

    def _read(self) -> Tuple[Dict[str, Dict], Dict[str, Dict]]:
        """The on-disk ``(entries, answers)`` maps (salvaging a corrupt
        file recovers entries only — answers are re-derivable from a
        re-tune, entries are the expensive part)."""
        if self.path is None or not self.path.exists():
            return {}, {}
        try:
            text = self.path.read_text()
        except OSError:
            return {}, {}
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            entries = self._salvage(text)
            self.salvaged += len(entries)
            self._quarantine(text)
            return entries, {}
        if isinstance(data, dict) and isinstance(data.get("entries"), dict):
            answers = data.get("answers")
            if not isinstance(answers, dict):
                answers = {}
            return data["entries"], answers
        return {}, {}

    def _read_entries(self) -> Dict[str, Dict]:
        entries, _answers = self._read()
        return entries

    @staticmethod
    def _salvage(text: str) -> Dict[str, Dict]:
        """Entry records that still parse inside a corrupt ledger.

        Scans for ``"<wsig>/<decision>": {record}`` pairs with
        ``json.JSONDecoder.raw_decode`` — the same recovery the perf
        log applies to torn record lists — keeping any pair whose key
        carries the ledger's ``/`` namespace separator and whose value
        looks like an :meth:`EvalOutcome.to_record` dict.
        """
        decoder = json.JSONDecoder()
        entries: Dict[str, Dict] = {}
        pos = 0
        n = len(text)
        while pos < n:
            quote = text.find('"', pos)
            if quote < 0:
                break
            try:
                key, end = decoder.raw_decode(text, quote)
            except (json.JSONDecodeError, ValueError):
                pos = quote + 1
                continue
            if not (isinstance(key, str) and "/" in key):
                pos = quote + 1
                continue
            colon = end
            while colon < n and text[colon] in " \t\r\n":
                colon += 1
            if colon >= n or text[colon] != ":":
                pos = end
                continue
            vstart = colon + 1
            while vstart < n and text[vstart] in " \t\r\n":
                vstart += 1
            try:
                value, vend = decoder.raw_decode(text, vstart)
            except (json.JSONDecodeError, ValueError):
                pos = quote + 1
                continue
            if isinstance(value, dict) and "decision" in value \
                    and "cost" in value:
                entries[key] = value
                pos = vend
            else:
                pos = quote + 1
        return entries

    def _quarantine(self, text: str):
        """Preserve a corrupt ledger next to itself (best effort)."""
        try:
            write_atomic(
                self.path.with_name(self.path.name + ".corrupt"), text
            )
        except OSError:
            pass

    def get(self, wsig: str, decision: Decision) -> Optional[EvalOutcome]:
        record = self.entries.get(f"{wsig}/{decision.encode()}")
        if record is None:
            return None
        return EvalOutcome.from_record(record)

    def put(self, wsig: str, outcome: EvalOutcome):
        key = f"{wsig}/{outcome.decision.encode()}"
        self.entries[key] = outcome.to_record()

    def get_answer(self, fingerprint: str) -> Optional[Dict]:
        return self.answers.get(fingerprint)

    def put_answer(self, fingerprint: str, record: Dict):
        """Store a serving answer record ``{"request": ..., "answer":
        ...}`` under its request fingerprint."""
        self.answers[fingerprint] = record

    def save(self, stats: Optional[Dict] = None) -> bool:
        """Persist the ledger; returns False when the path is unset or
        the (atomic) write failed.

        Saves take the shared advisory lock, re-read the file, and
        merge entries other processes added since we loaded it (our
        entries win on key conflicts — evaluation is deterministic, so
        conflicting records are equal anyway), so concurrent tunes
        sharing one ledger never drop each other's work.

        ``stats`` (the oracle's hit counts; see :meth:`Oracle.stats`)
        is recorded under ``"oracle_stats"`` — counters are derived
        from candidate fingerprints, not cache state, so equal-seed
        runs still write byte-identical ledgers.
        """
        if self.path is None:
            return False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            self.save_failures += 1
            return False
        with locked(self.path):
            merged, merged_answers = self._read()
            merged.update(self.entries)
            merged_answers.update(self.answers)
            self.entries = merged
            self.answers = merged_answers
            payload = {
                "version": self.VERSION,
                "entries": {k: merged[k] for k in sorted(merged)},
            }
            if merged_answers:
                payload["answers"] = {
                    k: merged_answers[k] for k in sorted(merged_answers)
                }
            if stats is not None:
                payload["oracle_stats"] = stats
            text = json.dumps(payload, indent=1, sort_keys=True) + "\n"
            ok = write_atomic(self.path, text)
        if not ok:
            self.save_failures += 1
        return ok

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# Static memory feasibility (a conservative lower bound).
# ----------------------------------------------------------------------


def statically_infeasible(
    assignment: Assignment,
    decision: Decision,
    cluster: Cluster,
    memory: MemoryKind,
) -> bool:
    """True when a candidate provably cannot fit, without simulating.

    Sums a *lower bound* of guaranteed-resident home-instance bytes:
    tensors whose distribution homes a piece on every machine point
    (no ``Fixed`` face) must keep at least one floor-sized piece per
    node (per processor for framebuffer-resident tensors) — fully
    partitioned tensors keep one *distinct* piece per processor. The
    bound deliberately ignores replica sharing, fetch staging, and
    reduction buffers, so it never rules out a feasible candidate; its
    value is catching replication-heavy layouts whose footprint grows
    with ``n^2/sqrt(p)`` and therefore *shrinks* relative to capacity
    on the coarse successive-halving rung.
    """
    per_node = 0.0
    per_proc = 0.0
    ppn = cluster.procs_per_node
    formats = formats_for(assignment, decision, memory)
    for tensor in assignment.tensors():
        fmt = formats.get(tensor.name)
        if fmt is None or not fmt.distributions:
            continue
        dist = fmt.distributions[0]
        if any(isinstance(m, Fixed) for m in dist.machine_dims):
            continue  # face-homed: not resident everywhere
        parts = {}
        for idx, (mdim, extent) in enumerate(
            zip(dist.machine_dims, decision.grid)
        ):
            if isinstance(mdim, DimName):
                mode = dist.partitioned[idx]
                parts[mode] = parts.get(mode, 1) * extent
        piece = float(tensor.itemsize)
        for mode, extent in enumerate(tensor.shape):
            piece *= max(1, extent // parts.get(mode, 1))
        replicated = any(
            isinstance(m, Broadcast) for m in dist.machine_dims
        )
        # Same-node processors may share a replicated piece; fully
        # partitioned pieces are distinct per processor.
        node_copies = 1 if replicated else min(
            ppn, max(1, math.prod(decision.grid) // cluster.num_nodes)
        )
        per_node += piece * node_copies
        per_proc += piece
    node = cluster.nodes[0]
    if memory is MemoryKind.SYSTEM_MEM:
        if node.system_memory is None:
            return False
        return per_node > node.system_memory.capacity_bytes
    return per_proc > cluster.processors[0].memory.capacity_bytes


# ----------------------------------------------------------------------
# Evaluation.
# ----------------------------------------------------------------------


class _CandidateTimeout(Exception):
    """Raised inside :func:`_deadline` when the wall clock expires."""


@contextmanager
def _deadline(timeout_s: Optional[float]):
    """Bound a candidate evaluation by wall-clock time.

    Uses ``SIGALRM``/``setitimer``, so it only arms on the main thread
    of a Unix process (exactly where oracle evaluation runs — in the
    driving process or inside fork-pool workers); anywhere else it is a
    no-op rather than a crash. Nested use keeps the outer timer.
    """
    if not timeout_s or timeout_s <= 0:
        yield
        return
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    if signal.getitimer(signal.ITIMER_REAL)[0] > 0:
        yield  # an enclosing deadline is already armed
        return

    def _expired(_signum, _frame):
        raise _CandidateTimeout()

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def evaluate_one(
    assignment: Assignment,
    cluster: Cluster,
    decision: Decision,
    params: MachineParams,
    memory: MemoryKind,
    mode: str,
    check_capacity: bool,
    static_prune: bool = True,
    timeout_s: Optional[float] = None,
) -> EvalOutcome:
    """Realize, compile, and simulate one candidate (mutates the
    assignment's tensor formats; pass a private copy).

    ``timeout_s`` bounds the candidate's wall-clock evaluation: a stuck
    realize/compile/simulate returns an infeasible outcome whose
    ``error`` names the timeout (counted in :attr:`Oracle.errors`)
    instead of hanging the whole tune.
    """
    if static_prune:
        reason = prune_reason(
            assignment,
            decision,
            cluster,
            memory,
            params=params,
            check_capacity=check_capacity,
        )
        if reason is not None:
            return EvalOutcome(
                decision=decision,
                cost=INFEASIBLE,
                oom=reason == STATIC_OOM,
                error=reason,
                pruned=True,
            )
    structure = ""
    executed = repriced = False
    try:
        with _deadline(timeout_s):
            with span("oracle.realize"):
                machine = Machine(cluster, Grid(*decision.grid))
                schedule, _formats = realize(
                    assignment, machine, decision, memory=memory
                )
                kernel = compile_kernel(schedule, machine)
            with span("oracle.simulate"):
                structure = phase_fingerprint(kernel, check_capacity, mode)
                report, executed, repriced = oracle_simulate(
                    kernel, params, check_capacity, mode, pkey=structure
                )
    except _CandidateTimeout:
        return EvalOutcome(
            decision=decision,
            cost=INFEASIBLE,
            error=(
                f"Timeout: candidate exceeded {timeout_s:g}s wall-clock"
            ),
            structure=structure,
        )
    except OutOfMemoryError:
        return EvalOutcome(
            decision=decision, cost=INFEASIBLE, oom=True,
            structure=structure,
        )
    except (ReproError, ValueError) as err:
        return EvalOutcome(
            decision=decision,
            cost=INFEASIBLE,
            error=f"{type(err).__name__}: {err}",
        )
    return EvalOutcome(
        decision=decision,
        cost=report.total_time,
        comm_time=report.comm_time,
        compute_time=report.compute_time,
        inter_node_bytes=report.inter_node_bytes,
        max_memory_bytes=float(report.max_memory_bytes),
        num_steps=int(report.num_steps),
        structure=structure,
        executed=executed,
        repriced=repriced,
    )


def tuner_eval_batch(
    assignment: Assignment,
    cluster: Cluster,
    decisions: Sequence[Decision],
    params: MachineParams,
    memory: MemoryKind,
    mode: str,
    check_capacity: bool,
    static_prune: bool = True,
    timeout_s: Optional[float] = None,
) -> List[EvalOutcome]:
    """One fork-pool task: evaluate a chunk of candidates.

    Registered with :mod:`repro.bench.parallel` so the driver can
    dispatch it by name; the worker's new simulation-cache entries ride
    back with the rows and merge into the parent's cache.
    """
    work = copy.deepcopy(assignment)
    return [
        evaluate_one(
            work, cluster, decision, params, memory, mode,
            check_capacity, static_prune, timeout_s=timeout_s,
        )
        for decision in decisions
    ]


register_sweep("tuner_eval_batch", tuner_eval_batch)


class Oracle:
    """Scores decision vectors for one (workload, cluster, params).

    ``jobs > 1`` spreads candidate chunks over forked workers through
    the shared sweep driver; the ledger (when given) is consulted
    before simulating and extended afterwards.
    """

    def __init__(
        self,
        cluster: Cluster,
        params: MachineParams = LASSEN,
        memory: Optional[MemoryKind] = None,
        mode: str = "orbit",
        check_capacity: bool = True,
        jobs: int = 1,
        ledger: Optional[TuningLedger] = None,
        static_prune: bool = True,
        timeout_s: Optional[float] = None,
    ):
        self.cluster = cluster
        self.params = params
        if memory is None:
            memory = (
                MemoryKind.GPU_FB
                if cluster.processor_kind is ProcessorKind.GPU
                else MemoryKind.SYSTEM_MEM
            )
        self.memory = memory
        self.mode = mode
        self.check_capacity = check_capacity
        self.jobs = max(1, jobs)
        self.ledger = ledger
        self.static_prune = static_prune
        #: Per-candidate wall-clock bound (None = unbounded). A stuck
        #: simulation becomes an infeasible, error-carrying outcome
        #: instead of a hung tune.
        self.timeout_s = timeout_s
        self.simulated = 0
        #: Candidates whose compile or simulation *errored* — OOMs are a
        #: legitimate search outcome and do not count.
        self.errors = 0
        #: Candidates rejected by the static analyzer without a single
        #: simulation (see :mod:`repro.analysis.prune`).
        self.pruned_static = 0
        #: Incrementality accounting. ``scored`` counts every decision
        #: requested; ``structures`` the distinct phase-structure
        #: fingerprints among simulated candidates (a seed-deterministic
        #: quantity — what goes into the ledger); ``trace_executions`` /
        #: ``repriced`` the live behaviour (cache-state dependent).
        self.scored = 0
        self.structures = set()
        self.structure_scored = 0
        self.trace_executions = 0
        self.repriced = 0

    def for_cluster(self, cluster: Cluster) -> "Oracle":
        """A sibling oracle on a different (e.g. coarsened) cluster."""
        return Oracle(
            cluster,
            params=self.params,
            memory=self.memory,
            mode=self.mode,
            check_capacity=self.check_capacity,
            jobs=self.jobs,
            ledger=self.ledger,
            static_prune=self.static_prune,
            timeout_s=self.timeout_s,
        )

    def evaluate(
        self, assignment: Assignment, decisions: Sequence[Decision]
    ) -> List[EvalOutcome]:
        """Outcomes for ``decisions``, in input order."""
        with span("oracle.evaluate"):
            return self._evaluate(assignment, decisions)

    def _evaluate(
        self, assignment: Assignment, decisions: Sequence[Decision]
    ) -> List[EvalOutcome]:
        before = {
            name: getattr(self, name)
            for name in (
                "scored", "simulated", "pruned_static", "errors",
                "trace_executions", "repriced",
            )
        }
        ledger_before = (
            (self.ledger.hits, self.ledger.misses)
            if self.ledger is not None else (0, 0)
        )
        wsig = workload_signature(
            assignment,
            self.cluster,
            self.params,
            self.memory,
            self.mode,
            self.check_capacity,
        )
        outcomes: Dict[Decision, EvalOutcome] = {}
        pending: List[Decision] = []
        queued = set()
        for decision in decisions:
            if decision in outcomes or decision in queued:
                continue
            hit = None
            if self.ledger is not None:
                hit = self.ledger.get(wsig, decision)
            if hit is not None:
                self.ledger.hits += 1
                outcomes[decision] = hit
                if hit.pruned:
                    self.pruned_static += 1
                elif hit.error and not hit.oom:
                    self.errors += 1
            else:
                if self.ledger is not None:
                    self.ledger.misses += 1
                pending.append(decision)
                queued.add(decision)
        self.scored += len(decisions)
        if pending:
            for outcome in self._evaluate_pending(assignment, pending):
                outcomes[outcome.decision] = outcome
                if outcome.pruned:
                    self.pruned_static += 1
                elif outcome.error and not outcome.oom:
                    self.errors += 1
                if outcome.structure:
                    self.structures.add(outcome.structure)
                    self.structure_scored += 1
                self.trace_executions += outcome.executed
                self.repriced += outcome.repriced
                if self.ledger is not None:
                    self.ledger.put(wsig, outcome)
            self.simulated += len(pending)
            if self.ledger is not None:
                self.ledger.save(stats=self.stats())
        for name, prev in before.items():
            METRICS.inc(f"oracle.{name}", getattr(self, name) - prev)
        if self.ledger is not None:
            METRICS.inc(
                "oracle.ledger_hits", self.ledger.hits - ledger_before[0]
            )
            METRICS.inc(
                "oracle.ledger_misses",
                self.ledger.misses - ledger_before[1],
            )
        return [outcomes[d] for d in decisions]

    def stats(self) -> Dict[str, int]:
        """Deterministic incrementality counters for the ledger.

        ``structure_hits`` counts simulated candidates that shared a
        phase-structure fingerprint with an earlier one — the
        re-priced-not-re-executed population. Derived from fingerprints
        rather than cache state, so equal-seed runs write equal stats.
        """
        return {
            "scored": self.scored,
            "simulated": self.simulated,
            "pruned_static": self.pruned_static,
            "structures": len(self.structures),
            "structure_hits": self.structure_scored - len(self.structures),
            "ledger_hits": (
                self.ledger.hits if self.ledger is not None else 0
            ),
            "ledger_misses": (
                self.ledger.misses if self.ledger is not None else 0
            ),
        }

    def merge_counters(self, other: "Oracle"):
        """Fold a sibling (coarse-rung) oracle's accounting into ours."""
        self.simulated += other.simulated
        self.errors += other.errors
        self.pruned_static += other.pruned_static
        self.scored += other.scored
        self.structures |= other.structures
        self.structure_scored += other.structure_scored
        self.trace_executions += other.trace_executions
        self.repriced += other.repriced

    def _evaluate_pending(
        self, assignment: Assignment, pending: List[Decision]
    ) -> List[EvalOutcome]:
        common = dict(
            assignment=assignment,
            cluster=self.cluster,
            params=self.params,
            memory=self.memory,
            mode=self.mode,
            check_capacity=self.check_capacity,
            static_prune=self.static_prune,
            timeout_s=self.timeout_s,
        )
        if self.jobs <= 1 or len(pending) <= 1:
            # In-process: evaluate against a private copy so the
            # caller's tensor formats are not clobbered mid-search.
            return tuner_eval_batch(decisions=pending, **common)
        chunks = min(self.jobs * 4, len(pending))
        per_point = [
            dict(common, decisions=pending[c::chunks])
            for c in range(chunks)
        ]
        return run_points("tuner_eval_batch", per_point, self.jobs)
