"""Search strategies over the schedule space.

Two strategies, picked automatically by space size:

* **exhaustive** — simulate every canonical candidate at full scale;
  right for the small spaces of low processor counts.
* **beam + successive halving** — score the whole space on a *coarse*
  projection first (grids shrunk toward ``coarse_procs`` processors, the
  problem weak-scaled down to match, a proportionally smaller cluster),
  then promote a geometrically shrinking beam of survivors through
  intermediate sizes up to the full machine. Only the final beam — plus
  the heuristic seed, which is never eliminated — is simulated at full
  scale, so the 512-node space costs a few full-size simulations
  instead of thousands.

Both are deterministic: candidate order is the canonical-key order,
ties break on the key, and the only randomness (sampling an oversized
rung 0) comes from an explicit ``seed``. Two runs with the same seed
therefore evaluate the same candidates and write identical ledgers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster
from repro.machine.machine import Machine
from repro.sim.params import LASSEN, MachineParams
from repro.analysis.prune import prune_reason
from repro.tuner.oracle import (
    EvalOutcome,
    INFEASIBLE,
    Oracle,
    STATIC_OOM,
    TuningLedger,
)
from repro.tuner.space import (
    Decision,
    coarsen,
    enumerate_space,
    from_heuristic,
    scale_assignment,
    warm_variants,
)

#: Spaces at most this large are searched exhaustively under
#: ``strategy="auto"``.
EXHAUSTIVE_THRESHOLD = 128

#: How many top-ranked outcomes a search keeps for its callers (the
#: joint pipeline tuner builds per-stage candidate pools from these).
RANKED_KEEP = 32


@dataclass
class SearchOutcome:
    """Everything a tuning run decided and measured."""

    best: EvalOutcome
    seed_outcome: EvalOutcome
    strategy: str
    space_size: int
    evaluations: int
    rungs: List[Dict] = field(default_factory=list)
    #: Top outcomes of the final (full-scale) rung, best first.
    ranked: List[EvalOutcome] = field(default_factory=list)
    #: Candidates whose compile/simulation *errored* (OOMs excluded).
    errors: int = 0
    #: Candidates the static analyzer rejected before any simulation
    #: (provable OOMs and dominated leaves — see
    #: :mod:`repro.analysis.prune`).
    pruned_static: int = 0
    #: Incremental-oracle accounting: real trace executions, candidates
    #: scored by re-pricing a shared phase structure, and the distinct
    #: structure count (see :mod:`repro.tuner.oracle`).
    trace_executions: int = 0
    repriced: int = 0
    structures: int = 0

    @property
    def improved(self) -> bool:
        """Did the search beat the heuristic seed?"""
        return self.best.cost < self.seed_outcome.cost

    def describe(self) -> str:
        lines = [
            f"strategy {self.strategy}: {self.space_size} candidates, "
            f"{self.evaluations} evaluated "
            f"({self.pruned_static} statically pruned, "
            f"{self.trace_executions} trace executions, "
            f"{self.repriced} re-priced from {self.structures} "
            f"phase structures)",
        ]
        for rung in self.rungs:
            lines.append(
                f"  rung @{rung['procs']} procs: {rung['candidates']} "
                f"candidates -> {rung['survivors']} survivors"
            )
        seed = self.seed_outcome
        seed_cost = "OOM" if not seed.feasible else f"{seed.cost:.4f}s"
        lines.append(f"  heuristic seed: {seed_cost} ({seed.decision.encode()})")
        best_cost = (
            "infeasible" if not self.best.feasible
            else f"{self.best.cost:.4f}s"
        )
        lines.append(
            f"  best: {best_cost} ({self.best.decision.encode()})"
        )
        return "\n".join(lines)


def _rank(outcomes: Sequence[EvalOutcome]) -> List[EvalOutcome]:
    return sorted(outcomes, key=lambda o: (o.cost, o.decision.key()))


def exhaustive_search(
    assignment: Assignment,
    oracle: Oracle,
    decisions: Sequence[Decision],
) -> Tuple[List[EvalOutcome], List[Dict]]:
    outcomes = oracle.evaluate(assignment, list(decisions))
    rung = {
        "procs": oracle.cluster.num_processors,
        "candidates": len(decisions),
        "survivors": 1,
    }
    return _rank(outcomes), [rung]


def _shrink_cluster(cluster: Cluster, procs: int) -> Cluster:
    """A smaller cluster with the same node anatomy (for coarse rungs)."""
    nodes = max(1, procs // cluster.procs_per_node)
    proto = cluster.processors[0]
    system = cluster.nodes[0].system_memory
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=cluster.procs_per_node,
        proc_kind=proto.kind,
        proc_mem_kind=proto.memory.kind,
        proc_mem_capacity=proto.memory.capacity_bytes,
        system_mem_capacity=(
            system.capacity_bytes if system is not None else 0
        ),
    )


def _problem_exponent(assignment: Assignment) -> float:
    """Weak-scaling exponent: per-processor footprint is preserved when
    extents scale with procs^(1/ndim) of the largest tensor."""
    ndim = max((t.ndim for t in assignment.tensors()), default=1)
    return 1.0 / max(1, ndim if ndim else 1)


def beam_search(
    assignment: Assignment,
    oracle: Oracle,
    decisions: Sequence[Decision],
    seed_decision: Decision,
    beam_width: int = 8,
    coarse_procs: int = 64,
    eta: int = 4,
    seed: int = 0,
    max_rung0: int = 4096,
    protected: Sequence[Decision] = (),
) -> Tuple[List[EvalOutcome], List[Dict]]:
    """Successive halving from a coarse projection up to full scale.

    Returns the final-rung outcomes (full scale, ranked) and per-rung
    statistics. The seed decision survives every cut, so the final
    ranking always contains the heuristic; ``protected`` decisions
    (e.g. warm-start projections of a pre-failure winner) get the same
    immunity.

    Two guards keep the coarse rungs honest:

    * candidates that are *statically* infeasible at full scale (their
      home-instance memory lower bound exceeds capacity — replication
      footprints shrink relative to capacity under coarsening, so the
      coarse rung alone would rank them well) are pinned to infinite
      cost on every rung instead of being simulated coarsely;
    * if the final full-scale rung comes back with no feasible
      candidate anyway, the beam is refilled with the next-ranked
      survivors of the previous rung until one fits or the space is
      exhausted.
    """
    full_procs = oracle.cluster.num_processors
    rng = random.Random(seed)
    pinned = [seed_decision] + [
        d for d in protected if d != seed_decision
    ]
    candidates = list(decisions)
    for d in pinned:
        if d not in candidates:
            candidates.append(d)
    candidates.sort(key=Decision.key)
    if len(candidates) > max_rung0:
        keep = set(
            rng.sample(range(len(candidates)), max_rung0)
        )
        sampled = [c for i, c in enumerate(candidates) if i in keep]
        for d in pinned:
            if d not in sampled:
                sampled.append(d)
        candidates = sampled
    dead: Dict[Decision, str] = {}
    if oracle.static_prune:
        for c in candidates:
            reason = prune_reason(
                assignment,
                c,
                oracle.cluster,
                oracle.memory,
                params=oracle.params,
                check_capacity=oracle.check_capacity,
            )
            if reason is not None:
                dead[c] = reason
        oracle.pruned_static += len(dead)

    # Rung ladder: coarse, coarse*eta, ..., full.
    targets: List[int] = []
    procs = min(coarse_procs, full_procs)
    while procs < full_procs:
        targets.append(procs)
        procs *= eta
    targets.append(full_procs)

    exponent = _problem_exponent(assignment)
    rungs: List[Dict] = []
    prev_ranking: List[Decision] = []
    rung0_ranking: List[Decision] = []
    for level, procs in enumerate(targets):
        last = level == len(targets) - 1
        if last:
            outcomes = oracle.evaluate(assignment, candidates)
            ranked = _rank(outcomes)
            # Refill: if nothing in the beam fits at full scale, pull
            # the next-ranked survivors of the previous rung, then —
            # because coarse rungs are blind to fetch-staging OOMs that
            # only appear at scale — fall all the way back to the full
            # rung-0 ranking before giving up.
            tried = set(candidates)
            pool = [
                d for d in prev_ranking
                if d not in tried and d not in dead
            ]
            pool += [
                d for d in rung0_ranking
                if d not in tried and d not in set(pool) and d not in dead
            ]
            while pool and not any(o.feasible for o in ranked):
                refill, pool = pool[:beam_width], pool[beam_width:]
                candidates = candidates + refill
                ranked = _rank(
                    ranked + oracle.evaluate(assignment, refill)
                )
            rungs.append({
                "procs": procs,
                "candidates": len(candidates),
                "survivors": 1,
            })
            return ranked, rungs
        coarse_cluster = _shrink_cluster(oracle.cluster, procs)
        actual = coarse_cluster.num_processors
        scale = (actual / full_procs) ** exponent
        coarse_assignment = scale_assignment(assignment, scale)
        coarse_oracle = oracle.for_cluster(coarse_cluster)
        alive = [c for c in candidates if c not in dead]
        coarse_outcomes = dict(zip(alive, coarse_oracle.evaluate(
            coarse_assignment, [coarsen(c, actual) for c in alive]
        )))
        oracle.merge_counters(coarse_oracle)
        outcomes = []
        for original in candidates:
            if original in dead:
                reason = dead[original]
                outcomes.append(EvalOutcome(
                    decision=original, cost=INFEASIBLE,
                    oom=reason == STATIC_OOM, error=reason, pruned=True,
                ))
                continue
            co = coarse_outcomes[original]
            outcomes.append(EvalOutcome(
                decision=original,
                cost=co.cost,
                oom=co.oom,
                error=co.error,
                comm_time=co.comm_time,
                compute_time=co.compute_time,
                inter_node_bytes=co.inter_node_bytes,
                max_memory_bytes=co.max_memory_bytes,
            ))
        ranked = _rank(outcomes)
        prev_ranking = [o.decision for o in ranked]
        if level == 0:
            rung0_ranking = prev_ranking
        remaining = len(targets) - 1 - level
        keep = max(beam_width * eta ** (remaining - 1), beam_width)
        survivors = [o.decision for o in ranked[:keep]]
        for d in pinned:
            if d not in survivors:
                survivors.append(d)
        rungs.append({
            "procs": procs,
            "candidates": len(candidates),
            "survivors": len(survivors),
        })
        candidates = survivors
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class TuneResult:
    """What ``Kernel.tune`` hands back: an ordinary schedule + formats.

    ``schedule``/``formats`` replay deterministically from ``decision``
    (see :func:`repro.tuner.space.realize`); ``kernel`` is the compiled
    result and ``report`` its simulation on the tuned machine.
    """

    decision: Decision
    schedule: object
    formats: Dict[str, object]
    machine: Machine
    kernel: object
    report: object
    search: SearchOutcome
    #: The canonical :class:`repro.api.ScheduleAnswer` when the tune
    #: came through the unified API (``Kernel.tune``, the serving
    #: daemon); ``None`` for direct :func:`tune` calls.
    answer: object = None

    def describe(self) -> str:
        lines = [f"tuned schedule: {self.decision.describe()}"]
        for name, fmt in sorted(self.formats.items()):
            lines.append(f"  format {name}: {fmt.notation()}")
        lines.append(self.search.describe())
        return "\n".join(lines)


def default_seed_grid(assignment: Assignment, num_procs: int) -> Tuple[int, ...]:
    """The grid the heuristic seed targets when only a cluster is given:
    the most-square factorization over the output's dimensionality."""
    dims = min(
        3, max(1, len(assignment.free_vars)), len(assignment.all_vars)
    )
    return balanced_grid(num_procs, dims)


def balanced_grid(p: int, dims: int) -> Tuple[int, ...]:
    """Most-balanced ``dims``-way factorization of ``p`` (descending)."""
    if dims <= 1:
        return (p,)
    best: Optional[Tuple[int, ...]] = None
    best_spread: Optional[float] = None

    def rec(remaining: int, left: int, prefix: Tuple[int, ...]):
        nonlocal best, best_spread
        if left == 1:
            shape = tuple(sorted(prefix + (remaining,), reverse=True))
            spread = shape[0] / shape[-1]
            if best_spread is None or (spread, shape) < (best_spread, best):
                best, best_spread = shape, spread
            return
        f = 1
        while f * f <= remaining:
            if remaining % f == 0:
                rec(remaining // f, left - 1, prefix + (f,))
                rec(f, left - 1, prefix + (remaining // f,))
            f += 1

    rec(p, dims, ())
    assert best is not None
    return best


def tune(
    assignment: Assignment,
    cluster: Cluster,
    params: MachineParams = LASSEN,
    *,
    seed_grid: Optional[Sequence[int]] = None,
    memory=None,
    mode: str = "orbit",
    check_capacity: bool = True,
    strategy: str = "auto",
    static_prune: bool = True,
    beam_width: int = 8,
    coarse_procs: int = 64,
    seed: int = 0,
    jobs: int = 1,
    max_dims: int = 3,
    ledger_path=None,
    ledger: Optional[TuningLedger] = None,
    warm_start: Optional[Decision] = None,
    objective: str = "total",
    failure_rate: float = 0.0,
    timeout_s: Optional[float] = None,
) -> TuneResult:
    """Search the schedule space for one assignment on one cluster.

    The heuristic (:func:`repro.core.autoschedule.auto_schedule`,
    encoded as a decision vector) seeds the search and survives every
    cut, so the result is never worse than the one-shot heuristic.
    Returns a :class:`TuneResult` whose schedule and formats are
    realized on the *caller's* assignment (formats applied), compiled
    and simulated.

    ``warm_start`` injects a known-good decision from another machine
    size (fault replanning's pre-failure winner, or the serving
    daemon's nearest tuned neighbor): its same-rank grid projections
    join the space and survive every beam cut, so the re-tune can only
    improve on replaying the old structure.

    ``strategy="warm"`` goes further: instead of joining the full
    space, the search is *restricted* to the warm neighborhood — the
    warm start's grid projections plus the heuristic seed — and
    evaluated exhaustively. That is the serving daemon's transfer
    path: strictly fewer oracle simulations than a cold tune of the
    same workload, at the cost of never out-exploring the neighbor's
    structure. Requires ``warm_start``.

    ``objective="expected"`` optimizes expected cost under a per-phase
    failure probability of ``failure_rate`` instead of raw simulated
    time: the final ranking is re-scored with recomputation exposure
    and checkpoint placement (the ``Decision.checkpoint`` axis) by
    :func:`repro.faults.objective.rerank_expected`. ``timeout_s``
    bounds each candidate's wall-clock evaluation (see
    :class:`~repro.tuner.oracle.Oracle`).
    """
    from repro.core.kernel import compile_kernel  # local: avoid cycle

    if objective not in ("total", "expected"):
        raise ValueError(
            f"unknown objective {objective!r} "
            f"(expected 'total' or 'expected')"
        )
    p = cluster.num_processors
    if seed_grid is None:
        seed_grid = default_seed_grid(assignment, p)
    seed_decision = from_heuristic(assignment, seed_grid)
    warm = []
    if warm_start is not None:
        warm = warm_variants(assignment, warm_start, p)
    if strategy == "warm":
        if warm_start is None:
            raise ValueError("strategy='warm' requires a warm_start")
        # The warm neighborhood only: no space enumeration at all —
        # this is what makes a warm-started serve miss strictly
        # cheaper than a cold tune.
        space = sorted(
            set(warm) | {seed_decision}, key=Decision.key
        )
    else:
        space = enumerate_space(assignment, p, max_dims=max_dims)
        if seed_decision not in space:
            space = sorted(space + [seed_decision], key=Decision.key)
        extra = [d for d in warm if d not in set(space)]
        if extra:
            space = sorted(space + extra, key=Decision.key)

    if ledger is None and ledger_path is not None:
        ledger = TuningLedger(ledger_path)
    oracle = Oracle(
        cluster,
        params=params,
        memory=memory,
        mode=mode,
        check_capacity=check_capacity,
        jobs=jobs,
        ledger=ledger,
        static_prune=static_prune,
        timeout_s=timeout_s,
    )
    if strategy == "auto":
        strategy = (
            "exhaustive"
            if len(space) <= EXHAUSTIVE_THRESHOLD
            else "beam"
        )
    if strategy in ("exhaustive", "warm"):
        ranked, rungs = exhaustive_search(assignment, oracle, space)
    elif strategy == "beam":
        ranked, rungs = beam_search(
            assignment,
            oracle,
            space,
            seed_decision,
            beam_width=beam_width,
            coarse_procs=coarse_procs,
            seed=seed,
            protected=warm,
        )
    else:
        raise ValueError(
            f"unknown strategy {strategy!r} "
            f"(expected 'auto', 'exhaustive', 'beam' or 'warm')"
        )
    if objective == "expected":
        from repro.faults.objective import rerank_expected  # local: cycle

        ranked = rerank_expected(
            ranked,
            assignment,
            params=params,
            num_nodes=cluster.num_nodes,
            failure_rate=failure_rate,
        )
    by_decision = {o.decision: o for o in ranked}
    seed_outcome = by_decision[seed_decision]
    best = ranked[0]
    if not best.feasible:
        # Nothing fits (including the heuristic): surface the seed so
        # callers get a deterministic, inspectable answer.
        best = seed_outcome
    outcome = SearchOutcome(
        best=best,
        seed_outcome=seed_outcome,
        strategy=strategy,
        space_size=len(space),
        evaluations=oracle.simulated,
        rungs=rungs,
        ranked=ranked[:RANKED_KEEP],
        errors=oracle.errors,
        pruned_static=oracle.pruned_static,
        trace_executions=oracle.trace_executions,
        repriced=oracle.repriced,
        structures=len(oracle.structures),
    )

    from repro.machine.grid import Grid
    from repro.tuner.space import realize

    machine = Machine(cluster, Grid(*best.decision.grid))
    schedule, formats = realize(
        assignment, machine, best.decision, memory=oracle.memory
    )
    kernel = compile_kernel(schedule, machine)
    report = None
    if best.feasible:
        from repro.bench.cache import SIM_CACHE

        report = SIM_CACHE.simulate(
            kernel, params, check_capacity=check_capacity, mode=mode
        )
    return TuneResult(
        decision=best.decision,
        schedule=schedule,
        formats=formats,
        machine=machine,
        kernel=kernel,
        report=report,
        search=outcome,
    )
