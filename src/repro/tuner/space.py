"""The tuner's schedule space: declarative decision vectors.

The paper's Section 9 extension — automatic schedule and format
selection — needs a *search space*, not just a heuristic. This module
materializes candidate schedules as small, hashable decision vectors
(:class:`Decision`) that pin every choice the paper's hand schedules
make:

* the machine-grid shape (a factorization of the processor count);
* which index variables distribute onto which grid dimensions;
* whether a leftover reduction variable is *sequenced* into steps, and
  whether those steps are systolic (``rotate`` by grid coordinates,
  Cannon/PUMMA style) or broadcast (SUMMA style);
* per-input communication: *pull* (replicate over the grid dimensions
  that do not index the tensor — the stationary-tensor pattern) or
  *tile* (partition the reduction mode across those dimensions, the
  fully-tiled Figure 9 layouts) and the loop level the fetch aggregates
  at;
* the output's off-grid placement (reduction face vs. replicas) and the
  leaf kernel (GEMM substitution vs. parallel loops).

A decision vector is *replayable*: :func:`realize` deterministically
rebuilds the same :class:`~repro.scheduling.schedule.Schedule` and
per-tensor :class:`~repro.formats.format.Format` every time, so the
tuning ledger can store vectors instead of schedules and a tuned result
is an ordinary schedule a performance engineer can inspect.

Symmetry: relabelling the grid dimensions of a candidate (together with
its variable assignment and rotation set) yields an isomorphic schedule
on the abstract torus, and reorderings of a rotation's source list are
identical by construction. :func:`canonicalize` quotients both out so
each symmetry class is enumerated and simulated once. (Row-major
node packing makes the relabelling symmetry approximate on clusters
with several processors per node; the canonical representative is the
one that is simulated.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import combinations, permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.autoschedule import choose_distributed_vars
from repro.formats.distribution import (
    Broadcast,
    DimName,
    Distribution,
    Fixed,
)
from repro.formats.format import Format
from repro.ir.expr import Access, Add, Expr, IndexVar, Literal, Mul
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import MemoryKind, ProcessorKind
from repro.machine.machine import Machine
from repro.scheduling.schedule import Schedule
from repro.util.errors import ScheduleError

_MODE_NAMES = "abcdefghijklmnopqrstuvwxyz"

#: Sentinel leaf choices; ``realize`` maps "gemm" to the machine's BLAS.
LEAF_GEMM = "gemm"
LEAF_LOOPS = "loops"

OUTPUT_FACE = "face"
OUTPUT_REPLICATE = "replicate"


@dataclass(frozen=True)
class Decision:
    """One point of the schedule space (all fields hashable/picklable).

    ``grid``
        Machine grid shape; its product is the processor count.
    ``dist``
        Index-variable names distributed onto the grid, one per
        dimension, in machine-dimension order.
    ``seq`` / ``steps_dim``
        Optional reduction variable sequenced into
        ``grid[steps_dim]`` steps (the divided k loop of Figure 9).
    ``rotate``
        Sorted grid-dimension indices whose coordinates rotate the
        sequenced loop (``()`` = broadcast steps; Cannon rotates both
        dimensions, PUMMA one).
    ``tiled``
        Input tensors whose unpartitioned reduction modes are tiled
        across the grid dimensions that do not index them (the fully
        tiled ``xy -> xy`` layouts); the rest *pull* replicas.
    ``step_comm``
        Inputs whose communication aggregates at the sequenced loop
        (one fetch per step); the rest fetch once per task at the
        innermost distributed loop.
    ``output_style``
        ``"face"`` homes the output on the 0-face of grid dimensions
        that do not index it (Johnson's reduction face);
        ``"replicate"`` keeps replicas everywhere (the heuristic's
        choice).
    ``leaf``
        ``"gemm"`` substitutes the machine's BLAS at the leaf,
        ``"loops"`` parallelizes the innermost local loop.
    ``checkpoint``
        Tensors snapshotted at every phase boundary (fault tolerance).
        Ignored by schedule construction — it prices into the
        ``objective="expected"`` tuning mode (per-step checkpoint
        overhead against reduced recomputation on failure) and tells
        the fault replanner which instances survive a node loss. Not
        enumerated by :func:`enumerate_space`; the expected-cost
        re-ranking expands it (:mod:`repro.faults.objective`).
    """

    grid: Tuple[int, ...]
    dist: Tuple[str, ...]
    seq: Optional[str] = None
    steps_dim: Optional[int] = None
    rotate: Tuple[int, ...] = ()
    tiled: Tuple[str, ...] = ()
    step_comm: Tuple[str, ...] = ()
    output_style: str = OUTPUT_FACE
    leaf: str = LEAF_LOOPS
    checkpoint: Tuple[str, ...] = ()

    def key(self) -> Tuple:
        """A total order over decisions (used for canonical forms,
        deterministic tie-breaks, and ledger keys)."""
        return (
            len(self.grid),
            self.grid,
            self.dist,
            self.seq or "",
            -1 if self.steps_dim is None else self.steps_dim,
            self.rotate,
            self.tiled,
            self.step_comm,
            self.output_style,
            self.leaf,
            self.checkpoint,
        )

    def encode(self) -> str:
        """Compact, stable, human-readable string form (ledger key)."""
        parts = [
            "grid=" + "x".join(str(g) for g in self.grid),
            "dist=" + ",".join(self.dist),
        ]
        if self.seq is not None:
            parts.append(f"seq={self.seq}@{self.steps_dim}")
        if self.rotate:
            parts.append("rot=" + ",".join(str(d) for d in self.rotate))
        if self.tiled:
            parts.append("tile=" + ",".join(self.tiled))
        if self.step_comm:
            parts.append("step=" + ",".join(self.step_comm))
        parts.append("out=" + self.output_style)
        parts.append("leaf=" + self.leaf)
        if self.checkpoint:
            # Emitted only when set, so checkpoint-free decisions keep
            # their pre-existing ledger keys.
            parts.append("ckpt=" + ",".join(self.checkpoint))
        return ";".join(parts)

    @staticmethod
    def decode(text: str) -> "Decision":
        """Inverse of :meth:`encode` (ledger replay)."""
        fields: Dict[str, str] = {}
        for part in text.split(";"):
            key, _, value = part.partition("=")
            fields[key] = value
        seq = None
        steps_dim = None
        if "seq" in fields:
            seq, _, dim = fields["seq"].partition("@")
            steps_dim = int(dim)
        split = lambda s: tuple(x for x in s.split(",") if x)  # noqa: E731
        return Decision(
            grid=tuple(int(g) for g in fields["grid"].split("x")),
            dist=split(fields["dist"]),
            seq=seq,
            steps_dim=steps_dim,
            rotate=tuple(int(d) for d in split(fields.get("rot", ""))),
            tiled=split(fields.get("tile", "")),
            step_comm=split(fields.get("step", "")),
            output_style=fields.get("out", OUTPUT_FACE),
            leaf=fields.get("leaf", LEAF_LOOPS),
            checkpoint=split(fields.get("ckpt", "")),
        )

    def describe(self) -> str:
        comm = "systolic" if self.rotate else (
            "broadcast" if self.seq else "one-shot"
        )
        return (
            f"grid {'x'.join(map(str, self.grid))}, "
            f"distribute ({', '.join(self.dist)}), {comm}"
            + (f" over {self.seq}" if self.seq else "")
            + (f", tiled {{{', '.join(self.tiled)}}}" if self.tiled else "")
            + f", leaf {self.leaf}"
        )


# ----------------------------------------------------------------------
# Canonicalization.
# ----------------------------------------------------------------------


def canonicalize(decision: Decision) -> Decision:
    """The canonical representative of a decision's symmetry class.

    * rotation sources are an unordered set (``rotate(k, [io, jo])``
      and ``rotate(k, [jo, io])`` are the same command) — sorted;
    * rotations along extent-1 grid dimensions are identities — dropped;
    * a sequenced loop no input communicates at is dead — folded away;
    * grid-dimension relabellings (permuting ``grid`` together with
      ``dist``, ``rotate`` and ``steps_dim``) are isomorphic — the
      lexicographically least relabelling is chosen.
    """
    tiled = tuple(sorted(set(decision.tiled)))
    step_comm = tuple(sorted(set(decision.step_comm) & set(tiled)))
    checkpoint = tuple(sorted(set(decision.checkpoint)))
    seq = decision.seq
    steps_dim = decision.steps_dim
    rotate = tuple(
        sorted({d for d in decision.rotate if decision.grid[d] > 1})
    )
    if seq is None or not step_comm:
        seq, steps_dim, rotate, step_comm = None, None, (), ()
    best: Optional[Decision] = None
    for perm in permutations(range(len(decision.grid))):
        grid = tuple(decision.grid[p] for p in perm)
        dist = tuple(decision.dist[p] for p in perm)
        new_pos = {old: new for new, old in enumerate(perm)}
        rot = tuple(sorted(new_pos[d] for d in rotate))
        sdim = None
        if steps_dim is not None:
            # Steps only depend on the extent: normalize to the first
            # dimension with that extent.
            extent = decision.grid[steps_dim]
            sdim = min(i for i, g in enumerate(grid) if g == extent)
        candidate = replace(
            decision,
            grid=grid,
            dist=dist,
            seq=seq,
            steps_dim=sdim,
            rotate=rot,
            tiled=tiled,
            step_comm=step_comm,
            checkpoint=checkpoint,
        )
        if best is None or candidate.key() < best.key():
            best = candidate
    return best


def _input_accesses(assignment: Assignment) -> List[Access]:
    """First access of each distinct input tensor, in expression order."""
    seen = []
    names = set()
    output = assignment.lhs.tensor.name
    for access in assignment.rhs.accesses():
        if access.tensor.name == output or access.tensor.name in names:
            continue
        names.add(access.tensor.name)
        seen.append(access)
    return seen


def _tileable_inputs(
    assignment: Assignment, dist: Sequence[str]
) -> List[str]:
    """Inputs with a mode indexed by an undistributed reduction variable
    *and* at least one grid dimension that does not index them."""
    undist_red = {
        v.name for v in assignment.reduction_vars if v.name not in dist
    }
    out = []
    for access in _input_accesses(assignment):
        index_names = {v.name for v in access.indices}
        if not undist_red & index_names:
            continue
        if all(d in index_names for d in dist):
            continue
        out.append(access.tensor.name)
    return out


def normalize(assignment: Assignment, decision: Decision) -> Decision:
    """Fold assignment-dependent degeneracies, then canonicalize.

    * ``tiled`` restricted to inputs that can actually be tiled;
    * ``step_comm`` restricted to tiled inputs the sequenced variable
      indexes (a per-step fetch of step-invariant data is the same
      candidate as a one-shot fetch);
    * ``output_style`` is meaningless when every grid dimension indexes
      the output — normalized to ``"face"``;
    * a GEMM leaf needs a contraction with at least two local loops.
    """
    tileable = set(_tileable_inputs(assignment, decision.dist))
    tiled = tuple(sorted(set(decision.tiled) & tileable))
    step_comm = set(decision.step_comm) & set(tiled)
    if decision.seq is not None:
        indexed_by_seq = {
            a.tensor.name
            for a in _input_accesses(assignment)
            if decision.seq in {v.name for v in a.indices}
        }
        step_comm &= indexed_by_seq
    out_names = {v.name for v in assignment.lhs.indices}
    output_style = decision.output_style
    if all(d in out_names for d in decision.dist):
        output_style = OUTPUT_FACE
    leaf = decision.leaf
    if not assignment.reduction_vars or len(assignment.all_vars) < 2:
        leaf = LEAF_LOOPS
    return canonicalize(
        replace(
            decision,
            tiled=tiled,
            step_comm=tuple(sorted(step_comm)),
            output_style=output_style,
            leaf=leaf,
        )
    )


# ----------------------------------------------------------------------
# Format derivation.
# ----------------------------------------------------------------------


def formats_for(
    assignment: Assignment,
    decision: Decision,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
) -> Dict[str, Format]:
    """Per-tensor distributions induced by a decision vector.

    Grid dimensions whose variable indexes a tensor partition the
    corresponding mode. Remaining dimensions: the output is homed on
    the 0-face (``"face"``) or replicated; *tiled* inputs spend those
    dimensions partitioning their unpartitioned reduction modes
    (preferring the sequenced variable's mode — the Figure 9
    ``xy -> xy`` layouts); *pulled* inputs replicate.
    """
    output = assignment.lhs.tensor.name
    tile_priority = [decision.seq] if decision.seq else []
    tile_priority += [
        v.name
        for v in assignment.reduction_vars
        if v.name not in decision.dist and v.name not in tile_priority
    ]
    formats: Dict[str, Format] = {}
    for access in assignment.accesses():
        tensor = access.tensor
        if tensor.name in formats:
            continue
        if tensor.ndim == 0:
            formats[tensor.name] = Format(memory=memory)
            continue
        index_names = [v.name for v in access.indices]
        mode_names = [_MODE_NAMES[m] for m in range(tensor.ndim)]
        used = set()
        mdims: List = []
        for var in decision.dist:
            if var in index_names:
                mode = index_names.index(var)
                mdims.append(DimName(mode_names[mode]))
                used.add(mode)
            else:
                mdims.append(None)  # placeholder, resolved below
        is_tiled = tensor.name in decision.tiled
        for pos, mdim in enumerate(mdims):
            if mdim is not None:
                continue
            if tensor.name == output:
                mdims[pos] = (
                    Fixed(0)
                    if decision.output_style == OUTPUT_FACE
                    else Broadcast()
                )
                continue
            filled = False
            if is_tiled:
                for var in tile_priority:
                    if var not in index_names:
                        continue
                    mode = index_names.index(var)
                    if mode in used:
                        continue
                    mdims[pos] = DimName(mode_names[mode])
                    used.add(mode)
                    filled = True
                    break
            if not filled:
                mdims[pos] = Broadcast()
        dist = Distribution(mode_names, mdims)
        formats[tensor.name] = Format(dist, memory=memory)
    return formats


# ----------------------------------------------------------------------
# Replay: decision vector -> Schedule + formats.
# ----------------------------------------------------------------------


def realize(
    assignment: Assignment,
    machine: Machine,
    decision: Decision,
    memory: MemoryKind = MemoryKind.SYSTEM_MEM,
    apply_formats: bool = True,
    format_overrides: Optional[Dict[str, Format]] = None,
) -> Tuple[Schedule, Dict[str, Format]]:
    """Deterministically rebuild the schedule a decision describes.

    The same decision replayed on the same assignment and machine
    produces a byte-identical plan (``compile_kernel(...).pretty()``),
    which is what makes the tuning ledger and cache keys sound.

    ``format_overrides`` pins named tensors to externally supplied
    formats instead of the decision-derived ones — how pipeline stages
    read an upstream tensor in the layout its producer left behind
    (the *direct* handoff) rather than redistributing first. Overridden
    formats must target the same machine grid.
    """
    from repro.analysis.legality import check_legal  # local: cycle

    check_legal(
        assignment, decision, grid_shape=machine.levels[0].shape
    )
    by_name = {v.name: v for v in assignment.all_vars}
    formats = formats_for(assignment, decision, memory)
    if format_overrides:
        tensor_names = {t.name for t in assignment.tensors()}
        for name, fmt in format_overrides.items():
            if name not in tensor_names:
                raise ScheduleError(
                    f"format override names unknown tensor {name!r}"
                )
            formats[name] = fmt
    if apply_formats:
        for tensor in assignment.tensors():
            if tensor.name in formats:
                tensor.format = formats[tensor.name]

    sched = Schedule(assignment)
    dist_vars = [by_name[n] for n in decision.dist]
    order = dist_vars + [
        v for v in assignment.all_vars if v.name not in decision.dist
    ]
    sched.reorder(order)
    outers, inners = [], []
    for var, extent in zip(dist_vars, decision.grid):
        outer = IndexVar(f"{var.name}_o")
        inner = IndexVar(f"{var.name}_i")
        sched.divide(var, outer, inner, extent)
        outers.append(outer)
        inners.append(inner)
    sched.reorder(outers + inners)
    sched.distribute(outers)

    seq_loop: Optional[IndexVar] = None
    if decision.seq is not None:
        seq_var = by_name[decision.seq]
        seq_o = IndexVar(f"{seq_var.name}_o")
        seq_i = IndexVar(f"{seq_var.name}_i")
        sched.divide(seq_var, seq_o, seq_i, decision.grid[decision.steps_dim])
        local_now = [v for v in sched.loop_vars() if v not in outers]
        rest = [v for v in local_now if v not in (seq_o, seq_i)]
        sched.reorder([seq_o] + rest + [seq_i])
        seq_loop = seq_o
        if decision.rotate:
            rotated = IndexVar(f"{seq_var.name}_r")
            sched.rotate(
                seq_o, [outers[d] for d in decision.rotate], rotated
            )
            seq_loop = rotated

    step_set = set(decision.step_comm)
    output = assignment.lhs.tensor.name
    sched.communicate(output, outers[-1])
    for tensor in assignment.tensors()[1:]:
        anchor = seq_loop if tensor.name in step_set else outers[-1]
        sched.communicate(tensor.name, anchor)

    leaf_nest = [
        v for v in sched.loop_vars() if v not in outers and v is not seq_loop
    ]
    if decision.leaf == LEAF_GEMM and leaf_nest:
        kernel = (
            "cublas_gemm"
            if machine.cluster.processor_kind is ProcessorKind.GPU
            else "blas_gemm"
        )
        sched.substitute(leaf_nest, kernel)
    elif leaf_nest:
        sched.parallelize(leaf_nest[0])
    return sched, formats


# ----------------------------------------------------------------------
# The heuristic as a decision vector (the tuner's seed).
# ----------------------------------------------------------------------


def from_heuristic(
    assignment: Assignment, grid_shape: Sequence[int]
) -> Decision:
    """Encode :func:`repro.core.autoschedule.auto_schedule`'s choice.

    The heuristic distributes output (then reduction) variables over
    the given grid, replicates every tensor across the grid dimensions
    it does not follow, communicates everything at the innermost
    distributed loop, and substitutes a GEMM leaf for contractions —
    all expressible as a pull/one-shot decision vector, which seeds the
    search so the tuner can never return something worse.
    """
    grid_shape = tuple(int(g) for g in grid_shape)
    dist = choose_distributed_vars(assignment, len(grid_shape))
    if len(dist) < len(grid_shape):
        from repro.analysis.diagnostics import Diagnostic
        from repro.util.errors import LegalityError

        raise LegalityError([Diagnostic(
            "dist-arity", "dist",
            f"assignment has {len(dist)} distributable variables but "
            f"the grid has {len(grid_shape)} dimensions",
        )])
    leaf = (
        LEAF_GEMM
        if assignment.reduction_vars and len(assignment.all_vars) >= 2
        else LEAF_LOOPS
    )
    return normalize(
        assignment,
        Decision(
            grid=grid_shape,
            dist=tuple(v.name for v in dist),
            output_style=OUTPUT_REPLICATE,
            leaf=leaf,
        ),
    )


# ----------------------------------------------------------------------
# Enumeration.
# ----------------------------------------------------------------------


def factorizations(p: int, max_dims: int) -> List[Tuple[int, ...]]:
    """Ordered factorizations of ``p`` into 1..max_dims factors >= 2
    (plus the trivial ``(1,)`` machine when p == 1)."""
    if p == 1:
        return [(1,)]
    out: List[Tuple[int, ...]] = []

    def rec(remaining: int, prefix: Tuple[int, ...]):
        if remaining == 1:
            if prefix:
                out.append(prefix)
            return
        if len(prefix) == max_dims:
            return
        for f in range(2, remaining + 1):
            if remaining % f == 0:
                rec(remaining // f, prefix + (f,))

    rec(p, ())
    return out


def enumerate_space(
    assignment: Assignment,
    num_procs: int,
    max_dims: int = 3,
    include_loops_leaf: bool = True,
) -> List[Decision]:
    """All canonical decision vectors for an assignment and machine size.

    Symmetric candidates (grid-dimension relabellings, reordered
    rotation sources) collapse to one representative; degenerate
    structure (dead sequential loops, untileable tile requests) is
    folded before deduplication, so the returned list counts distinct
    schedules. Sorted by :meth:`Decision.key` for determinism.
    """
    domains = assignment.domains()
    var_names = [v.name for v in assignment.all_vars]
    reductions = [v.name for v in assignment.reduction_vars]
    contraction = bool(reductions) and len(var_names) >= 2
    leaf_choices = [LEAF_GEMM] if contraction else [LEAF_LOOPS]
    if contraction and include_loops_leaf:
        leaf_choices.append(LEAF_LOOPS)
    out_names = {v.name for v in assignment.lhs.indices}
    seen: Dict[Tuple, Decision] = {}

    def emit(decision: Decision):
        norm = normalize(assignment, decision)
        seen.setdefault(norm.key(), norm)

    for shape in factorizations(num_procs, min(max_dims, len(var_names))):
        d = len(shape)
        for dist in permutations(var_names, d):
            extent_ok = all(
                domains[IndexVar(v)] is None or domains[IndexVar(v)] >= g
                for v, g in zip(dist, shape)
            )
            if not extent_ok:
                continue
            tileable = _tileable_inputs(assignment, dist)
            undist_red = [r for r in reductions if r not in dist]
            output_styles = (
                [OUTPUT_FACE]
                if all(v in out_names for v in dist)
                else [OUTPUT_FACE, OUTPUT_REPLICATE]
            )
            tiled_subsets = [
                tuple(sorted(c))
                for k in range(len(tileable) + 1)
                for c in combinations(tileable, k)
            ]
            dims = list(range(d))
            step_dims = sorted(
                {shape[i]: i for i in reversed(dims)}.values()
            )
            rotate_subsets = [
                tuple(sorted(c))
                for k in range(d + 1)
                for c in combinations(dims, k)
            ]
            for out_style in output_styles:
                for leaf in leaf_choices:
                    for tiled in tiled_subsets:
                        # One-shot (no sequenced loop).
                        emit(Decision(
                            grid=shape,
                            dist=dist,
                            tiled=tiled,
                            output_style=out_style,
                            leaf=leaf,
                        ))
                        if not tiled:
                            continue
                        for seq in undist_red:
                            steppable = [
                                t for t in tiled
                                if _indexed_by(assignment, t, seq)
                            ]
                            if not steppable:
                                continue
                            step_subsets = [
                                tuple(sorted(c))
                                for k in range(1, len(steppable) + 1)
                                for c in combinations(steppable, k)
                            ]
                            seq_extent = domains[IndexVar(seq)]
                            for steps_dim in step_dims:
                                if (
                                    seq_extent is not None
                                    and shape[steps_dim] > seq_extent
                                ):
                                    continue
                                for rot in rotate_subsets:
                                    for step_comm in step_subsets:
                                        emit(Decision(
                                            grid=shape,
                                            dist=dist,
                                            seq=seq,
                                            steps_dim=steps_dim,
                                            rotate=rot,
                                            tiled=tiled,
                                            step_comm=step_comm,
                                            output_style=out_style,
                                            leaf=leaf,
                                        ))
    return [seen[k] for k in sorted(seen)]


def _indexed_by(assignment: Assignment, tensor: str, var: str) -> bool:
    for access in _input_accesses(assignment):
        if access.tensor.name == tensor:
            return var in {v.name for v in access.indices}
    return False


# ----------------------------------------------------------------------
# Coarse projections (successive halving's cheap rung).
# ----------------------------------------------------------------------


def coarsen(decision: Decision, target_procs: int) -> Decision:
    """Shrink a decision's grid to at most ``target_procs`` points.

    Extents shrink by their smallest prime factor, largest extent
    first, so the grid's *shape character* (square vs. skewed vs.
    one-dimensional) survives the projection — that is what the coarse
    rung is ranking.
    """
    grid = list(decision.grid)
    while math.prod(grid) > target_procs:
        idx = max(range(len(grid)), key=lambda j: (grid[j], -j))
        g = grid[idx]
        if g <= 1:
            break
        factor = _smallest_prime_factor(g)
        grid[idx] = g // factor
    return replace(decision, grid=tuple(grid))


def warm_variants(
    assignment: Assignment, warm: Decision, num_procs: int
) -> List[Decision]:
    """Project a known-good decision onto a different processor count.

    Fault replanning re-tunes on the surviving machine; the pre-failure
    winner is the obvious place to start, but its grid no longer
    multiplies out to the new processor count. Every same-rank
    factorization of ``num_procs`` keeps the decision's structural
    choices (distribution order, sequencing, tiling, leaf) with a
    resized grid; variants that fail normalization-time legality are
    simply dropped. Sorted by :meth:`Decision.key` for determinism.
    """
    out: Dict[Tuple, Decision] = {}
    for shape in factorizations(num_procs, len(warm.grid)):
        if len(shape) != len(warm.grid):
            continue
        for perm in permutations(shape):
            candidate = replace(warm, grid=tuple(perm))
            if (
                candidate.steps_dim is not None
                and candidate.grid[candidate.steps_dim] < 1
            ):
                continue
            norm = normalize(assignment, candidate)
            out.setdefault(norm.key(), norm)
    return [out[k] for k in sorted(out)]


def _smallest_prime_factor(n: int) -> int:
    f = 2
    while f * f <= n:
        if n % f == 0:
            return f
        f += 1
    return n


def scale_assignment(
    assignment: Assignment, scale: float, multiple: int = 8
) -> Assignment:
    """A fresh copy of an assignment with every index extent scaled.

    Used to weak-scale the problem alongside a coarsened machine so
    per-processor footprints — and therefore OOM feasibility — carry
    over to the cheap rung. Tensor formats are reset (the tuner applies
    per-candidate formats anyway).
    """
    new_extent: Dict[str, int] = {}
    for var, extent in assignment.domains().items():
        if extent is None:
            continue
        scaled = max(1, int(round(extent * scale)))
        if extent >= multiple:
            scaled = max(multiple, round(scaled / multiple) * multiple)
        new_extent[var.name] = min(scaled, extent)
    tensors: Dict[str, TensorVar] = {}

    def rebuild_tensor(access: Access) -> TensorVar:
        old = access.tensor
        if old.name not in tensors:
            shape = tuple(
                new_extent.get(v.name, e)
                for v, e in zip(access.indices, old.shape)
            )
            tensors[old.name] = TensorVar(
                old.name, shape, Format(memory=old.format.memory),
                dtype=old.dtype,
            )
        return tensors[old.name]

    def rebuild(expr: Expr) -> Expr:
        if isinstance(expr, Access):
            return Access(rebuild_tensor(expr), expr.indices)
        if isinstance(expr, Literal):
            return Literal(expr.value)
        if isinstance(expr, (Add, Mul)):
            return type(expr)(rebuild(expr.lhs), rebuild(expr.rhs))
        raise TypeError(f"unexpected expression node {expr!r}")

    lhs = Access(rebuild_tensor(assignment.lhs), assignment.lhs.indices)
    return Assignment(lhs, rebuild(assignment.rhs), assignment.accumulate)
