"""Named tuning workloads (fresh assignments for the CLI and tests).

Each builder returns a *new* :class:`~repro.ir.tensor.Assignment` with
default (undistributed) formats — the tuner derives formats per
candidate, so workloads carry only shapes and structure. Sizes default
to the paper's weak-scaling rule: matrix sides grow with
``sqrt(nodes)``, 3-tensor sides with ``cbrt(nodes)`` (Section 7.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bench.weak_scaling import weak_cube_side, weak_matrix_size
from repro.ir.expr import index_vars
from repro.ir.tensor import Assignment, TensorVar


def matmul(n: int) -> Assignment:
    """Square GEMM ``A(i,j) = B(i,k) C(k,j)`` (Figure 9's workload)."""
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n))
    C = TensorVar("C", (n, n))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j])


def matmul_rect(m: int, k: int, n: int) -> Assignment:
    """Rectangular GEMM — small-k problems favour stationary-output
    pull schedules over systolic rotation."""
    A = TensorVar("A", (m, n))
    B = TensorVar("B", (m, k))
    C = TensorVar("C", (k, n))
    i, j, kk = index_vars("i j k")
    return Assignment(A[i, j], B[i, kk] * C[kk, j])


def ttv(n: int) -> Assignment:
    """Tensor-times-vector ``A(i,j) = B(i,j,k) c(k)``."""
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n, n))
    c = TensorVar("c", (n,))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, j, k] * c[k])


def ttm(n: int, r: Optional[int] = None) -> Assignment:
    """Tensor-times-matrix ``A(i,j,l) = B(i,j,k) C(k,l)``."""
    if r is None:
        r = max(16, n // 4)
    A = TensorVar("A", (n, n, r))
    B = TensorVar("B", (n, n, n))
    C = TensorVar("C", (n, r))
    i, j, k, l = index_vars("i j k l")
    return Assignment(A[i, j, l], B[i, j, k] * C[k, l])


def mttkrp(n: int, r: int = 64) -> Assignment:
    """MTTKRP ``A(i,l) = B(i,j,k) C(j,l) D(k,l)``."""
    A = TensorVar("A", (n, r))
    B = TensorVar("B", (n, n, n))
    C = TensorVar("C", (n, r))
    D = TensorVar("D", (n, r))
    i, j, k, l = index_vars("i j k l")
    return Assignment(A[i, l], B[i, j, k] * C[j, l] * D[k, l])


def sized(workload: str, n: int) -> Assignment:
    """A named workload at an explicit side length ``n``.

    Rectangular matmul derives its contraction dimension from ``n``
    (the small-k regime the workload exists to exercise).
    """
    if workload == "matmul-rect":
        return matmul_rect(n, max(256, n // 64), n)
    builder = WORKLOADS.get(workload)
    if builder is None:
        raise ValueError(f"unknown workload {workload!r}")
    return builder(n)


def weak_scaled(workload: str, nodes: int, base: int = 8192) -> Assignment:
    """A named workload at the paper's weak-scaled size for ``nodes``."""
    if workload in ("matmul", "matmul-rect"):
        return sized(workload, weak_matrix_size(base, nodes))
    return sized(workload, weak_cube_side(min(base, 512), nodes))


WORKLOADS: Dict[str, Callable] = {
    "matmul": matmul,
    "matmul-rect": matmul_rect,
    "ttv": ttv,
    "ttm": ttm,
    "mttkrp": mttkrp,
}
