"""Named tuning workloads (fresh assignments for the CLI and tests).

Each builder returns a *new* :class:`~repro.ir.tensor.Assignment` with
default (undistributed) formats — the tuner derives formats per
candidate, so workloads carry only shapes and structure. Sizes default
to the paper's weak-scaling rule: matrix sides grow with
``sqrt(nodes)``, 3-tensor sides with ``cbrt(nodes)`` (Section 7.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.bench.weak_scaling import weak_cube_side, weak_matrix_size
from repro.ir.expr import index_vars
from repro.ir.tensor import Assignment, TensorVar
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind

GIB = 1024 ** 3


def lean_cluster(nodes: int, mem_gib: int = 1) -> Cluster:
    """One-socket CPU nodes with little memory.

    The pipeline demos and acceptance tests all run on this anatomy:
    replication-heavy schedules OOM, so layout choice (and the handoff
    between stages) decides the race rather than raw flops.
    """
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=1,
        proc_kind=ProcessorKind.CPU_SOCKET,
        proc_mem_kind=MemoryKind.SYSTEM_MEM,
        proc_mem_capacity=mem_gib * GIB,
        system_mem_capacity=mem_gib * GIB,
    )


def matmul(n: int) -> Assignment:
    """Square GEMM ``A(i,j) = B(i,k) C(k,j)`` (Figure 9's workload)."""
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n))
    C = TensorVar("C", (n, n))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j])


def matmul_rect(m: int, k: int, n: int) -> Assignment:
    """Rectangular GEMM — small-k problems favour stationary-output
    pull schedules over systolic rotation."""
    A = TensorVar("A", (m, n))
    B = TensorVar("B", (m, k))
    C = TensorVar("C", (k, n))
    i, j, kk = index_vars("i j k")
    return Assignment(A[i, j], B[i, kk] * C[kk, j])


def ttv(n: int) -> Assignment:
    """Tensor-times-vector ``A(i,j) = B(i,j,k) c(k)``."""
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n, n))
    c = TensorVar("c", (n,))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, j, k] * c[k])


def ttm(n: int, r: Optional[int] = None) -> Assignment:
    """Tensor-times-matrix ``A(i,j,l) = B(i,j,k) C(k,l)``."""
    if r is None:
        r = max(16, n // 4)
    A = TensorVar("A", (n, n, r))
    B = TensorVar("B", (n, n, n))
    C = TensorVar("C", (n, r))
    i, j, k, l = index_vars("i j k l")
    return Assignment(A[i, j, l], B[i, j, k] * C[k, l])


def mttkrp(n: int, r: int = 64) -> Assignment:
    """MTTKRP ``A(i,l) = B(i,j,k) C(j,l) D(k,l)``."""
    A = TensorVar("A", (n, r))
    B = TensorVar("B", (n, n, n))
    C = TensorVar("C", (n, r))
    D = TensorVar("D", (n, r))
    i, j, k, l = index_vars("i j k l")
    return Assignment(A[i, l], B[i, j, k] * C[j, l] * D[k, l])


def sized(workload: str, n: int) -> Assignment:
    """A named workload at an explicit side length ``n``.

    Rectangular matmul derives its contraction dimension from ``n``
    (the small-k regime the workload exists to exercise).
    """
    if workload == "matmul-rect":
        return matmul_rect(n, max(256, n // 64), n)
    builder = WORKLOADS.get(workload)
    if builder is None:
        raise ValueError(f"unknown workload {workload!r}")
    return builder(n)


def weak_scaled(workload: str, nodes: int, base: int = 8192) -> Assignment:
    """A named workload at the paper's weak-scaled size for ``nodes``."""
    if workload in ("matmul", "matmul-rect"):
        return sized(workload, weak_matrix_size(base, nodes))
    return sized(workload, weak_cube_side(min(base, 512), nodes))


WORKLOADS: Dict[str, Callable] = {
    "matmul": matmul,
    "matmul-rect": matmul_rect,
    "ttv": ttv,
    "ttm": ttm,
    "mttkrp": mttkrp,
}


# ----------------------------------------------------------------------
# Pipeline workloads: lists of stages sharing intermediate tensors.
# ----------------------------------------------------------------------


def matmul_chain(n: int, r: Optional[int] = None) -> List[Assignment]:
    """``(A@B)@C``: two chained GEMMs through the intermediate ``T``.

    ``r`` is the width of the trailing matrix (default square). A
    narrow tail (``r << n``) is the projection-style chain where the
    two stages prefer *different* grids — the regime where joint
    tuning of the ``T`` handoff pays off.
    """
    if r is None:
        r = n
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n))
    C = TensorVar("C", (n, r))
    T = TensorVar("T", (n, n))
    D = TensorVar("D", (n, r))
    i, j, k, l = index_vars("i j k l")
    return [
        Assignment(T[i, j], A[i, k] * B[k, j]),
        Assignment(D[i, l], T[i, j] * C[j, l]),
    ]


def ttmc(n: int, r: Optional[int] = None) -> List[Assignment]:
    """TTMc: a 3-tensor contracted with two matrices, mode by mode.

    ``T(i,j,l) = B(i,j,k) C(k,l)`` then ``Z(i,m,l) = T(i,j,l) D(j,m)``
    — the Tucker-decomposition building block whose handoff (the dense
    intermediate ``T``) dominates naive implementations.
    """
    if r is None:
        r = max(16, n // 4)
    B = TensorVar("B", (n, n, n))
    C = TensorVar("C", (n, r))
    D = TensorVar("D", (n, r))
    T = TensorVar("T", (n, n, r))
    Z = TensorVar("Z", (n, r, r))
    i, j, k, l, m = index_vars("i j k l m")
    return [
        Assignment(T[i, j, l], B[i, j, k] * C[k, l]),
        Assignment(Z[i, m, l], T[i, j, l] * D[j, m]),
    ]


PIPELINES: Dict[str, Callable] = {
    "chain-matmul": matmul_chain,
    "ttmc": ttmc,
}


def pipeline_stages(name: str, n: int) -> List[Assignment]:
    """A named pipeline workload at an explicit side length ``n``."""
    builder = PIPELINES.get(name)
    if builder is None:
        raise ValueError(f"unknown pipeline workload {name!r}")
    return builder(n)


def weak_scaled_pipeline(
    name: str, nodes: int, base: int = 8192
) -> List[Assignment]:
    """A named pipeline at the paper's weak-scaled size for ``nodes``."""
    if name == "chain-matmul":
        return pipeline_stages(name, weak_matrix_size(base, nodes))
    return pipeline_stages(name, weak_cube_side(min(base, 512), nodes))
