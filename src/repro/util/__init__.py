"""Shared utilities: geometry (intervals/rectangles), errors, naming."""

from repro.util.errors import (
    DistributionError,
    LoweringError,
    OutOfMemoryError,
    ReproError,
    ScheduleError,
    UnsupportedScheduleError,
)
from repro.util.geometry import Interval, Rect

__all__ = [
    "DistributionError",
    "Interval",
    "LoweringError",
    "OutOfMemoryError",
    "Rect",
    "ReproError",
    "ScheduleError",
    "UnsupportedScheduleError",
]
