"""Exception hierarchy for the DISTAL reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch compiler/runtime failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DistributionError(ReproError):
    """An invalid tensor distribution notation statement.

    Raised when a statement violates the validity conditions of Section 3.2:
    ``|X| = dim T``, ``|Y| = dim M``, no duplicate names, and every machine
    dimension name must also name a tensor dimension.
    """


class ScheduleError(ReproError):
    """An illegal scheduling command (unknown variable, bad reorder, ...)."""


class UnsupportedScheduleError(ScheduleError):
    """A schedule that is valid in the paper but outside this implementation.

    The known case is distributing a *range* of a fused (collapsed) variable,
    which produces non-rectangular iteration blocks.
    """


class LegalityError(ScheduleError):
    """A decision vector rejected by the static legality verifier.

    Carries the verifier's structured findings (``diagnostics``: rule id,
    offending decision field, message) so callers can report or test
    against individual rules instead of parsing the message.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        lines = "; ".join(
            f"[{d.rule}] {d.field}: {d.message}" for d in self.diagnostics
        )
        super().__init__(f"illegal schedule decision: {lines}")


class TraceSanityError(ReproError):
    """The trace sanitizer found an inconsistent execution trace.

    Raised only in the opt-in ``sanitize=True`` executor debug mode;
    ``findings`` holds the sanitizer's structured diagnostics.
    """

    def __init__(self, findings):
        self.findings = list(findings)
        lines = "; ".join(
            f"[{d.rule}] {d.field}: {d.message}" for d in self.findings
        )
        super().__init__(f"trace failed sanity checks: {lines}")


class LoweringError(ReproError):
    """Concrete index notation could not be lowered to a runtime plan."""


class PipelineError(ReproError):
    """An ill-formed kernel pipeline (cycle, duplicate producer, shape
    mismatch between stages, or an invalid handoff choice)."""


class NodeFailure(ReproError):
    """A simulated node died at a phase boundary (fault injection).

    Raised by the executors when an armed
    :class:`~repro.faults.events.FaultPlan` kills a node: steps
    ``0..phase-1`` of ``partial_trace`` completed before the failure,
    and ``lost`` lists every home instance the dead node held —
    ``(tensor name, machine coords, rect)`` triples, sorted — so the
    replanner can match them against replica/checkpoint availability.
    """

    def __init__(
        self,
        phase,
        node,
        surviving_nodes,
        lost,
        partial_trace,
        step_label="",
    ):
        self.phase = phase
        self.node = node
        self.surviving_nodes = surviving_nodes
        self.lost = tuple(lost)
        self.partial_trace = partial_trace
        self.step_label = step_label
        super().__init__(
            f"node {node} failed at phase {phase}"
            + (f" ({step_label!r})" if step_label else "")
            + f"; {surviving_nodes} nodes survive, "
            f"{len(self.lost)} home instances lost"
        )


class OutOfMemoryError(ReproError):
    """A simulated memory exceeded its capacity.

    Mirrors the paper's observation that Johnson's algorithm and the COSMA
    schedule exhaust GPU framebuffer memory at 32+ nodes (Section 7.1.2).
    """

    def __init__(self, memory_name, needed_bytes, capacity_bytes):
        self.memory_name = memory_name
        self.needed_bytes = needed_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"memory {memory_name} over capacity: needs {needed_bytes} bytes, "
            f"holds at most {capacity_bytes}"
        )
