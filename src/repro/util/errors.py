"""Exception hierarchy for the DISTAL reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch compiler/runtime failures without catching programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DistributionError(ReproError):
    """An invalid tensor distribution notation statement.

    Raised when a statement violates the validity conditions of Section 3.2:
    ``|X| = dim T``, ``|Y| = dim M``, no duplicate names, and every machine
    dimension name must also name a tensor dimension.
    """


class ScheduleError(ReproError):
    """An illegal scheduling command (unknown variable, bad reorder, ...)."""


class UnsupportedScheduleError(ScheduleError):
    """A schedule that is valid in the paper but outside this implementation.

    The known case is distributing a *range* of a fused (collapsed) variable,
    which produces non-rectangular iteration blocks.
    """


class LoweringError(ReproError):
    """Concrete index notation could not be lowered to a runtime plan."""


class PipelineError(ReproError):
    """An ill-formed kernel pipeline (cycle, duplicate producer, shape
    mismatch between stages, or an invalid handoff choice)."""


class OutOfMemoryError(ReproError):
    """A simulated memory exceeded its capacity.

    Mirrors the paper's observation that Johnson's algorithm and the COSMA
    schedule exhaust GPU framebuffer memory at 32+ nodes (Section 7.1.2).
    """

    def __init__(self, memory_name, needed_bytes, capacity_bytes):
        self.memory_name = memory_name
        self.needed_bytes = needed_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"memory {memory_name} over capacity: needs {needed_bytes} bytes, "
            f"holds at most {capacity_bytes}"
        )
