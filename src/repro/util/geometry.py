"""Interval and rectangle arithmetic.

Every bounds computation in the compiler — partition derivation, copy
rectangles, leaf slices — is interval arithmetic over half-open integer
intervals, combined per-dimension into hyper-rectangles (:class:`Rect`).
This mirrors the "standard bounds analysis procedure" of Section 6.2 of the
paper, where Legion partitions are built from hyper-rectangular bounding
boxes of index variable extents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Interval:
    """A half-open integer interval ``[lo, hi)``.

    Empty intervals are normalized to ``hi == lo``; an interval is a *point*
    when it contains exactly one integer.
    """

    lo: int
    hi: int

    def __post_init__(self):
        if self.hi < self.lo:
            object.__setattr__(self, "hi", self.lo)

    @staticmethod
    def point(value: int) -> "Interval":
        """The interval containing exactly ``value``."""
        return Interval(value, value + 1)

    @staticmethod
    def extent(n: int) -> "Interval":
        """The full domain ``[0, n)`` of a loop or tensor dimension."""
        return Interval(0, n)

    @property
    def size(self) -> int:
        """Number of integers in the interval."""
        return max(0, self.hi - self.lo)

    @property
    def is_empty(self) -> bool:
        return self.hi <= self.lo

    @property
    def is_point(self) -> bool:
        return self.size == 1

    @property
    def value(self) -> int:
        """The single value of a point interval."""
        if not self.is_point:
            raise ValueError(f"{self} is not a point interval")
        return self.lo

    def contains(self, other: "Interval") -> bool:
        """Whether ``other`` is a (possibly empty) sub-interval of self."""
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def contains_value(self, value: int) -> bool:
        return self.lo <= value < self.hi

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def clip(self, bound: "Interval") -> "Interval":
        """Alias of :meth:`intersect`, used when clamping to a loop domain."""
        return self.intersect(bound)

    def shift(self, offset: int) -> "Interval":
        return Interval(self.lo + offset, self.hi + offset)

    def scale(self, factor: int) -> "Interval":
        """Interval of ``factor * x`` for ``x`` in self (factor > 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Interval(self.lo * factor, (self.hi - 1) * factor + 1)

    def __add__(self, other: "Interval") -> "Interval":
        """Minkowski sum: interval of ``x + y``."""
        if self.is_empty or other.is_empty:
            return Interval(0, 0)
        return Interval(self.lo + other.lo, self.hi + other.hi - 1)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo},{self.hi})"


@dataclass(frozen=True)
class Rect:
    """A hyper-rectangle: the product of one interval per dimension."""

    intervals: Tuple[Interval, ...]

    @staticmethod
    def of(*intervals: Interval) -> "Rect":
        return Rect(tuple(intervals))

    @staticmethod
    def from_bounds(los: Sequence[int], his: Sequence[int]) -> "Rect":
        return Rect(tuple(Interval(lo, hi) for lo, hi in zip(los, his)))

    @staticmethod
    def full(shape: Sequence[int]) -> "Rect":
        """The rectangle covering an entire tensor of the given shape."""
        return Rect(tuple(Interval.extent(n) for n in shape))

    @staticmethod
    def point_at(coords: Sequence[int]) -> "Rect":
        return Rect(tuple(Interval.point(c) for c in coords))

    @property
    def dim(self) -> int:
        return len(self.intervals)

    @property
    def volume(self) -> int:
        v = 1
        for ival in self.intervals:
            v *= ival.size
        return v

    @property
    def is_empty(self) -> bool:
        return any(ival.is_empty for ival in self.intervals)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(ival.size for ival in self.intervals)

    @property
    def lo(self) -> Tuple[int, ...]:
        return tuple(ival.lo for ival in self.intervals)

    @property
    def hi(self) -> Tuple[int, ...]:
        return tuple(ival.hi for ival in self.intervals)

    def contains(self, other: "Rect") -> bool:
        if other.is_empty:
            return True
        if self.dim != other.dim:
            return False
        return all(a.contains(b) for a, b in zip(self.intervals, other.intervals))

    def contains_point(self, coords: Sequence[int]) -> bool:
        return all(
            ival.contains_value(c) for ival, c in zip(self.intervals, coords)
        )

    def intersect(self, other: "Rect") -> "Rect":
        if self.dim != other.dim:
            raise ValueError("dimension mismatch in Rect.intersect")
        return Rect(
            tuple(a.intersect(b) for a, b in zip(self.intervals, other.intervals))
        )

    def overlaps(self, other: "Rect") -> bool:
        return not self.intersect(other).is_empty

    def as_slices(self) -> Tuple[slice, ...]:
        """Numpy slicing for this rectangle against a global array."""
        return tuple(slice(ival.lo, ival.hi) for ival in self.intervals)

    def __repr__(self) -> str:
        return "x".join(repr(ival) for ival in self.intervals)


def split_evenly(extent: int, pieces: int, index: int) -> Interval:
    """The ``index``-th of ``pieces`` contiguous blocks of ``[0, extent)``.

    Blocks are ``ceil(extent / pieces)`` wide (the paper's blocked
    partitioning function); trailing blocks may be short or empty when the
    extent does not divide evenly.
    """
    if pieces <= 0:
        raise ValueError("pieces must be positive")
    if not 0 <= index < pieces:
        raise ValueError(f"block index {index} out of range for {pieces} pieces")
    tile = ceil_div(extent, pieces)
    lo = min(index * tile, extent)
    hi = min(lo + tile, extent)
    return Interval(lo, hi)


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def bounding_rect(rects: Sequence[Rect]) -> Optional[Rect]:
    """The smallest rectangle containing every non-empty rect, or ``None``."""
    live = [r for r in rects if not r.is_empty]
    if not live:
        return None
    dim = live[0].dim
    los = [min(r.intervals[d].lo for r in live) for d in range(dim)]
    his = [max(r.intervals[d].hi for r in live) for d in range(dim)]
    return Rect.from_bounds(los, his)
