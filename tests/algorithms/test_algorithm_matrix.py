"""Cross-product correctness matrix over algorithms, sizes and grids.

Every matmul algorithm must be correct for divisible and ragged matrix
sizes on square and rectangular grids — the combinations the paper's
weak-scaling sweep actually visits.
"""

import numpy as np
import pytest

from repro import Cluster, Machine
from repro.algorithms import cannon, cosma, johnson, pumma, solomonik, summa

SIZES = [16, 21]  # divisible and ragged


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(9)
    return {
        n: {"B": rng.random((n, n)), "C": rng.random((n, n))} for n in SIZES
    }


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize(
    "grid", [(2, 2), (4, 2), (2, 4), (3, 3)], ids=str
)
@pytest.mark.parametrize(
    "algorithm", [cannon, pumma, summa], ids=lambda f: f.__name__
)
def test_2d_algorithms(algorithm, grid, n, arrays):
    machine = Machine.flat(*grid)
    kernel = algorithm(machine, n)
    kernel.execute(dict(arrays[n]), verify=True)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("grid", [(2, 2, 2), (3, 3, 3)], ids=str)
def test_johnson_grids(grid, n, arrays):
    machine = Machine.flat(*grid)
    kernel = johnson(machine, n)
    kernel.execute(dict(arrays[n]), verify=True)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("grid", [(2, 2, 2), (4, 4, 2)], ids=str)
def test_solomonik_grids(grid, n, arrays):
    machine = Machine.flat(*grid)
    kernel = solomonik(machine, n)
    kernel.execute(dict(arrays[n]), verify=True)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("procs", [4, 8, 12])
def test_cosma_proc_counts(procs, n, arrays):
    cluster = Cluster.cpu_cluster(procs, sockets_per_node=1)
    kernel = cosma(cluster, n)
    kernel.execute(dict(arrays[n]), verify=True)


@pytest.mark.parametrize(
    "algorithm", [cannon, pumma, summa], ids=lambda f: f.__name__
)
def test_gpu_memory_variant(algorithm):
    """Framebuffer-pinned formats work on GPU clusters too."""
    from repro import Grid, MemoryKind

    rng = np.random.default_rng(10)
    n = 16
    cluster = Cluster.gpu_cluster(2, gpus_per_node=2)
    machine = Machine(cluster, Grid(2, 2))
    kernel = algorithm(machine, n, memory=MemoryKind.GPU_FB)
    kernel.execute(
        {"B": rng.random((n, n)), "C": rng.random((n, n))}, verify=True
    )
