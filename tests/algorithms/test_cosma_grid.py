"""Tests for the COSMA grid/steps optimizer."""

import pytest

from repro.algorithms.cosma_grid import (
    comm_volume,
    divisors,
    factor_triples,
    optimize_grid,
)


class TestFactorization:
    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(7) == [1, 7]

    def test_factor_triples(self):
        triples = set(factor_triples(8))
        assert (2, 2, 2) in triples
        assert (8, 1, 1) in triples
        assert all(a * b * c == 8 for a, b, c in triples)


class TestCommVolume:
    def test_2d_grid_no_reduction_term(self):
        v2d = comm_volume(64, 64, 64, (8, 8, 1))
        assert v2d == 64 * 64 / 8 + 64 * 64 / 8

    def test_3d_grid_adds_output(self):
        v3d = comm_volume(64, 64, 64, (4, 4, 4))
        assert v3d == pytest.approx(64 * 64 / 16 * 3)


class TestOptimizer:
    def test_square_problem_prefers_balance(self):
        d = optimize_grid(1024, 1024, 1024, 64)
        assert d.grid == (4, 4, 4)

    def test_tall_skinny_prefers_1d(self):
        # C is m x n with tiny n: partitioning n or k is wasteful.
        d = optimize_grid(10_000, 16, 10_000, 16)
        assert d.gy == 1

    def test_memory_forces_steps(self):
        # With barely more memory than the output tile, the optimizer
        # must step the k chunks sequentially.
        d = optimize_grid(1024, 1024, 1024, 16, memory_words=300_000)
        assert d.num_steps > 1

    def test_memory_infeasible(self):
        with pytest.raises(ValueError):
            optimize_grid(1024, 1024, 1024, 4, memory_words=10)

    def test_unit_processor(self):
        d = optimize_grid(64, 64, 64, 1)
        assert d.grid == (1, 1, 1)
        assert d.num_steps == 1

    def test_respects_dimensions(self):
        # Cannot split a dimension of 2 over more than 2 processors.
        d = optimize_grid(2, 2, 1024, 16)
        assert d.gx <= 2 and d.gy <= 2
