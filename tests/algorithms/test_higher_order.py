"""Tests for the higher-order kernels of Section 7.2."""

import pytest

from repro import Machine
from repro.algorithms import innerprod, mttkrp, ttm, ttv
from repro.util.errors import ScheduleError

N = 12


@pytest.fixture
def cube(rng):
    return rng.random((N, N, N))


class TestTTV:
    def test_correct(self, rng, cube):
        kern = ttv(Machine.flat(2, 2), N)
        kern.execute({"B": cube, "c": rng.random(N)}, verify=True)

    def test_zero_communication(self, rng, cube):
        # The paper's headline TTV property: no communication at all.
        kern = ttv(Machine.flat(2, 2), N)
        res = kern.execute({"B": cube, "c": rng.random(N)})
        assert res.trace.total_copy_bytes == 0

    def test_needs_2d_machine(self):
        with pytest.raises(ScheduleError):
            ttv(Machine.flat(4), N)

    def test_bandwidth_bound_leaf(self, rng, cube):
        kern = ttv(Machine.flat(2, 2), N)
        res = kern.execute({"B": cube, "c": rng.random(N)})
        work = [w for s in res.trace.steps for w in s.work.values()]
        assert all(w.kernel is None for w in work)
        assert sum(w.bytes_touched for w in work) > N ** 3 * 8


class TestInnerprod:
    def test_correct(self, rng, cube):
        kern = innerprod(Machine.flat(2, 2), N)
        kern.execute({"B": cube, "C": rng.random((N, N, N))}, verify=True)

    def test_global_reduction_tree(self, rng, cube):
        kern = innerprod(Machine.flat(2, 2), N)
        res = kern.execute({"B": cube, "C": rng.random((N, N, N))})
        reduces = [c for c in res.trace.copies if c.reduce]
        # Three non-origin processors reduce their scalar partials.
        assert len(reduces) == 3
        assert all(c.nbytes == 8 for c in reduces)

    def test_only_scalar_communication(self, rng, cube):
        kern = innerprod(Machine.flat(2, 2), N)
        res = kern.execute({"B": cube, "C": rng.random((N, N, N))})
        assert res.trace.total_copy_bytes == 3 * 8


class TestTTM:
    def test_correct(self, rng, cube):
        kern = ttm(Machine.flat(4), N, r=8)
        kern.execute({"B": cube, "C": rng.random((N, 8))}, verify=True)

    def test_zero_communication(self, rng, cube):
        # Section 7.2.2: the TTM schedule has no inter-node communication.
        kern = ttm(Machine.flat(4), N, r=8)
        res = kern.execute({"B": cube, "C": rng.random((N, 8))})
        assert res.trace.total_copy_bytes == 0

    def test_gemm_leaf(self, rng, cube):
        kern = ttm(Machine.flat(2), N, r=8)
        res = kern.execute({"B": cube, "C": rng.random((N, 8))})
        kernels = {
            w.kernel for s in res.trace.steps for w in s.work.values()
        }
        assert "blas_gemm" in kernels


class TestMTTKRP:
    def test_correct(self, rng, cube):
        kern = mttkrp(Machine.flat(2, 2, 2), N, r=8)
        kern.execute(
            {"B": cube, "C": rng.random((N, 8)), "D": rng.random((N, 8))},
            verify=True,
        )

    def test_output_reduces_to_face(self, rng, cube):
        kern = mttkrp(Machine.flat(2, 2, 2), N, r=8)
        res = kern.execute(
            {"B": cube, "C": rng.random((N, 8)), "D": rng.random((N, 8))}
        )
        reduces = [c for c in res.trace.copies if c.reduce]
        assert len(reduces) == 6  # all but the (jo=0, ko=0) tasks
        for c in reduces:
            assert c.dst_coords[1] == 0 and c.dst_coords[2] == 0

    def test_b_stays_in_place(self, rng, cube):
        # Ballard et al.: the 3-tensor is never communicated.
        kern = mttkrp(Machine.flat(2, 2, 2), N, r=8)
        res = kern.execute(
            {"B": cube, "C": rng.random((N, 8)), "D": rng.random((N, 8))}
        )
        assert not any(c.tensor == "B" for c in res.trace.copies)

    def test_non_cube_grid(self, rng, cube):
        kern = mttkrp(Machine.flat(4, 2, 1), N, r=8)
        kern.execute(
            {"B": cube, "C": rng.random((N, 8)), "D": rng.random((N, 8))},
            verify=True,
        )
