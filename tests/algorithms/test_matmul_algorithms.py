"""The Figure 9 case studies: all six algorithms, verified and
characterized by their communication patterns."""

import pytest

from repro import Cluster, Machine
from repro.algorithms import (
    cannon,
    cosma,
    johnson,
    pumma,
    solomonik,
    summa,
)
from repro.algorithms.matmul import summa_rect
from repro.util.errors import ScheduleError


N = 24


@pytest.fixture
def gemm_inputs(rng):
    return {"B": rng.random((N, N)), "C": rng.random((N, N))}


class TestCorrectness:
    """Every algorithm must equal the numpy oracle."""

    def test_summa(self, gemm_inputs):
        summa(Machine.flat(2, 2), N).execute(gemm_inputs, verify=True)

    def test_summa_rectangular_grid(self, gemm_inputs):
        summa(Machine.flat(4, 2), N).execute(gemm_inputs, verify=True)

    def test_cannon(self, gemm_inputs):
        cannon(Machine.flat(3, 3), N).execute(gemm_inputs, verify=True)

    def test_pumma(self, gemm_inputs):
        pumma(Machine.flat(3, 3), N).execute(gemm_inputs, verify=True)

    def test_johnson(self, gemm_inputs):
        johnson(Machine.flat(2, 2, 2), N).execute(gemm_inputs, verify=True)

    def test_solomonik(self, gemm_inputs):
        solomonik(Machine.flat(2, 2, 2), N).execute(gemm_inputs, verify=True)

    def test_cosma(self, gemm_inputs):
        cl = Cluster.cpu_cluster(4, sockets_per_node=1)
        cosma(cl, N).execute(gemm_inputs, verify=True)

    def test_summa_rect(self, rng):
        m = Machine.flat(2, 2)
        kern = summa_rect(m, 12, 20, 8)
        kern.execute(
            {"B": rng.random((12, 20)), "C": rng.random((20, 8))},
            verify=True,
        )

    def test_non_divisible_matrix(self, rng):
        # 26 over a 3x3 grid: ragged tiles.
        kern = summa(Machine.flat(3, 3), 26, chunk=7)
        kern.execute(
            {"B": rng.random((26, 26)), "C": rng.random((26, 26))},
            verify=True,
        )


class TestCommunicationPatterns:
    """The qualitative patterns of Figure 9's icons."""

    def test_cannon_is_systolic(self, gemm_inputs):
        m = Machine.flat(3, 3)
        res = cannon(m, N).execute(gemm_inputs)
        for copy in res.trace.copies:
            if copy.tensor in ("B", "C"):
                assert m.torus_distance(copy.src_coords, copy.dst_coords) <= 1

    def test_summa_broadcasts(self, gemm_inputs):
        # SUMMA: in some step, one source supplies several destinations.
        res = summa(Machine.flat(3, 3), N).execute(gemm_inputs)
        found_broadcast = False
        for step in res.trace.steps:
            by_src = {}
            for c in step.copies:
                by_src.setdefault((c.tensor, c.src_coords), 0)
                by_src[(c.tensor, c.src_coords)] += 1
            if any(v >= 2 for v in by_src.values()):
                found_broadcast = True
        assert found_broadcast

    def test_johnson_one_shot(self, gemm_inputs):
        # Johnson's: one communication phase up front, one reduction.
        res = johnson(Machine.flat(2, 2, 2), N).execute(gemm_inputs)
        comm_steps = [s for s in res.trace.steps if s.copies]
        assert len(comm_steps) == 2  # fetch + reduce
        reduce_step = comm_steps[-1]
        assert all(c.reduce for c in reduce_step.copies)

    def test_johnson_reduces_to_face(self, gemm_inputs):
        res = johnson(Machine.flat(2, 2, 2), N).execute(gemm_inputs)
        for c in res.trace.copies:
            if c.reduce:
                assert c.dst_coords[2] == 0

    def test_2d_equal_data_distribution(self):
        # Cannon/SUMMA/PUMMA share formats: A, B, C all tiled.
        for make in (cannon, summa, pumma):
            kern = make(Machine.flat(2, 2), N)
            for t in kern.assignment.tensors():
                assert t.format.notation() == "xy -> xy"

    def test_johnson_formats_fix_faces(self):
        kern = johnson(Machine.flat(2, 2, 2), N)
        notations = {
            t.name: t.format.notation() for t in kern.assignment.tensors()
        }
        assert notations == {
            "A": "xy -> xy0",
            "B": "xz -> x0z",
            "C": "zy -> 0yz",
        }

    def test_solomonik_uses_less_comm_than_cannon_per_proc(self, rng):
        # 2.5D on 2x2x2 vs Cannon on the same 8 processors arranged
        # 4x2: replication should cut inter-node bytes.
        n = 32
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        sol = solomonik(Machine.flat(2, 2, 2), n).execute(dict(inputs))
        can = cannon(Machine.flat(4, 2), n).execute(dict(inputs))
        assert sol.trace.inter_node_bytes <= can.trace.inter_node_bytes


class TestValidation:
    def test_johnson_needs_3d(self):
        with pytest.raises(ScheduleError):
            johnson(Machine.flat(2, 2), N)

    def test_solomonik_needs_square_slices(self):
        with pytest.raises(ScheduleError):
            solomonik(Machine.flat(2, 3, 2), N)

    def test_solomonik_needs_c_divides_q(self):
        with pytest.raises(ScheduleError):
            solomonik(Machine.flat(3, 3, 2), N)

    def test_summa_rect_grid_too_large(self):
        with pytest.raises(ScheduleError):
            summa_rect(Machine.flat(8, 8), 4, 16, 4)


class TestGeneratedCode:
    def test_pretty_shows_structure(self):
        kern = cannon(Machine.flat(3, 3), N)
        text = kern.pretty()
        assert "index_launch" in text
        assert "for kos" in text

    def test_fifteen_line_claim(self):
        # Section 1: a DISTAL GEMM distribution spec is ~15 lines versus
        # COSMA's ~500; our SUMMA builder applies 6 schedule commands.
        kern = summa(Machine.flat(2, 2), N)
        # distribute compound = divide x2 + reorder + distribute.
        assert len(kern.plan.graph._split_of) >= 3
