"""Memory and communication bounds: sound against the executor, and
strictly tighter than the oracle's historical static check."""

import pytest

from repro.analysis import comm_lower_bound, memory_bounds
from repro.core.kernel import compile_kernel
from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.sim.costmodel import CostModel
from repro.tuner.oracle import statically_infeasible
from repro.tuner.space import enumerate_space, realize
from repro.tuner.workloads import matmul, ttm


def observed_peak(assignment, decision, cluster, bound):
    """Execute the candidate and read the target memory's high water."""
    machine = Machine(cluster, Grid(*decision.grid))
    schedule, _ = realize(assignment, machine, decision)
    kernel = compile_kernel(schedule, machine)
    result = kernel.trace(check_capacity=False, mode="batched")
    return result.memory_high_water.get(bound.memory_name, 0)


class TestMemoryBounds:
    @pytest.mark.parametrize(
        "assignment", [matmul(512), ttm(64)], ids=["matmul", "ttm"]
    )
    def test_brackets_the_executor(self, assignment):
        cluster = Cluster.cpu_cluster(4)
        for decision in enumerate_space(
            assignment, cluster.num_processors
        ):
            bound = memory_bounds(assignment, decision, cluster)
            peak = observed_peak(assignment, decision, cluster, bound)
            enc = decision.encode()
            assert bound.lower_bytes <= peak, (
                f"{enc}: lower bound {bound.lower_bytes} exceeds "
                f"observed peak {peak}"
            )
            assert peak <= bound.upper_bytes, (
                f"{enc}: observed peak {peak} exceeds upper bound "
                f"{bound.upper_bytes}"
            )

    def test_tighter_than_the_old_static_check(self):
        # Everywhere the old floor-block bound proved infeasibility the
        # new one must too (it dominates it), and it must prove strictly
        # more candidates infeasible on a memory-constrained cluster.
        assignment = matmul(4096)
        cluster = Cluster.build(
            num_nodes=32,
            procs_per_node=2,
            proc_kind=ProcessorKind.CPU_SOCKET,
            proc_mem_kind=MemoryKind.SYSTEM_MEM,
            proc_mem_capacity=32 * 1024 * 1024,
            system_mem_capacity=32 * 1024 * 1024,
        )
        memory = MemoryKind.SYSTEM_MEM
        old_count = new_count = 0
        for decision in enumerate_space(
            assignment, cluster.num_processors
        ):
            old = statically_infeasible(
                assignment, decision, cluster, memory
            )
            new = memory_bounds(
                assignment, decision, cluster, memory
            ).infeasible
            if old:
                assert new, (
                    f"{decision.encode()}: old bound proves OOM but the "
                    "new one does not"
                )
            old_count += old
            new_count += new
        assert new_count > old_count

    def test_components_are_reported(self):
        assignment = matmul(1024)
        cluster = Cluster.cpu_cluster(4)
        space = enumerate_space(assignment, cluster.num_processors)
        stepped = [d for d in space if d.step_comm and d.rotate]
        assert stepped
        bound = memory_bounds(assignment, stepped[0], cluster)
        assert bound.home_bytes > 0
        assert bound.lower_bytes <= bound.upper_bytes
        assert "peak in" in bound.describe()


class TestCommBound:
    def test_sound_against_every_candidate(self):
        # No schedule the tuner can express moves less than the bound
        # (per average node).
        assignment = matmul(1024)
        cluster = Cluster.cpu_cluster(4, system_mem_gib=1)
        # Condition on one tensor's worth of local bytes: much tighter
        # than capacity, still sound for single-tensor-resident nodes.
        bound = comm_lower_bound(assignment, cluster, LASSEN)
        model = CostModel(cluster, LASSEN)
        for decision in enumerate_space(
            assignment, cluster.num_processors
        ):
            machine = Machine(cluster, Grid(*decision.grid))
            schedule, _ = realize(assignment, machine, decision)
            kernel = compile_kernel(schedule, machine)
            result = kernel.trace(check_capacity=False, mode="orbit")
            report = model.time_trace(result.trace)
            per_node = report.inter_node_bytes / bound.num_nodes
            assert per_node >= bound.per_node_bytes

    def test_matmul_uses_the_itt_model_when_memory_is_small(self):
        assignment = matmul(8192)
        cluster = Cluster.cpu_cluster(64, system_mem_gib=1)
        bound = comm_lower_bound(
            assignment, cluster, LASSEN, local_bytes=64 * 1024 * 1024
        )
        assert bound.per_node_bytes > 0
        volume_only = comm_lower_bound(
            assignment, cluster, LASSEN, local_bytes=64 * 1024 * 1024
        )
        assert bound.model in ("volume", "itt-loomis-whitney")
        assert bound.per_node_bytes == volume_only.per_node_bytes

    def test_certificate(self):
        assignment = matmul(8192)
        cluster = Cluster.cpu_cluster(16, system_mem_gib=2)
        bound = comm_lower_bound(assignment, cluster, LASSEN)
        if bound.per_node_bytes == 0:
            assert bound.certificate(10**9) is None
        else:
            total = bound.per_node_bytes * bound.num_nodes
            assert bound.certificate(total) == pytest.approx(1.0)
            assert bound.certificate(2 * total) == pytest.approx(2.0)
