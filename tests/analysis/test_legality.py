"""The legality verifier: one test per rule, plus the property that
every candidate the tuner enumerates verifies cleanly."""

import pytest

from repro.analysis import check_legal, verify_legality
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.tuner.space import Decision, enumerate_space, realize
from repro.tuner.workloads import matmul, matmul_rect, mttkrp, ttm
from repro.util.errors import LegalityError, ScheduleError


def rules(diags):
    return {(d.rule, d.field) for d in diags}


def flagged(assignment, decision, **kwargs):
    return rules(verify_legality(assignment, decision, **kwargs))


LEGAL_CANNON = Decision(
    grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
    rotate=(0, 1), tiled=("B", "C"), step_comm=("B", "C"), leaf="gemm",
)


class TestRules:
    def test_legal_decision_has_no_diagnostics(self):
        assert verify_legality(matmul(256), LEGAL_CANNON, num_procs=4) == []

    def test_grid_empty(self):
        stmt = matmul(256)
        assert ("grid-empty", "grid") in flagged(
            stmt, Decision(grid=(), dist=())
        )
        assert ("grid-empty", "grid") in flagged(
            stmt, Decision(grid=(2, 0), dist=("i", "j"))
        )

    def test_grid_factorization_processor_count(self):
        diags = flagged(
            matmul(256), Decision(grid=(3,), dist=("i",)), num_procs=4
        )
        assert ("grid-factorization", "grid") in diags

    def test_grid_factorization_machine_shape(self):
        diags = flagged(
            matmul(256),
            Decision(grid=(2, 2), dist=("i", "j")),
            grid_shape=(4, 1),
        )
        assert ("grid-factorization", "grid") in diags

    def test_dist_arity(self):
        assert ("dist-arity", "dist") in flagged(
            matmul(256), Decision(grid=(2, 2), dist=("i",))
        )

    def test_unbound_var(self):
        assert ("unbound-var", "dist") in flagged(
            matmul(256), Decision(grid=(2, 2), dist=("i", "z"))
        )

    def test_duplicate_var(self):
        assert ("duplicate-var", "dist") in flagged(
            matmul(256), Decision(grid=(2, 2), dist=("i", "i"))
        )

    def test_extent_mismatch(self):
        assert ("extent-mismatch", "dist") in flagged(
            matmul(256), Decision(grid=(512,), dist=("i",))
        )

    def test_seq_unbound(self):
        assert ("seq-unbound", "seq") in flagged(
            matmul(256),
            Decision(grid=(4,), dist=("i",), seq="z", steps_dim=0),
        )

    def test_seq_distributed(self):
        assert ("seq-distributed", "seq") in flagged(
            matmul(256),
            Decision(grid=(2, 2), dist=("i", "k"), seq="k", steps_dim=0),
        )

    def test_seq_not_reduction(self):
        assert ("seq-not-reduction", "seq") in flagged(
            matmul(256),
            Decision(grid=(4,), dist=("j",), seq="i", steps_dim=0),
        )

    def test_reduction_order_seq_without_steps(self):
        assert ("reduction-order", "steps_dim") in flagged(
            matmul(256), Decision(grid=(4,), dist=("i",), seq="k")
        )

    def test_reduction_order_steps_without_seq(self):
        assert ("reduction-order", "steps_dim") in flagged(
            matmul(256), Decision(grid=(4,), dist=("i",), steps_dim=0)
        )

    def test_reduction_order_step_comm_without_seq(self):
        assert ("reduction-order", "step_comm") in flagged(
            matmul(256),
            Decision(
                grid=(4,), dist=("i",), tiled=("C",), step_comm=("C",)
            ),
        )

    def test_steps_dim_range(self):
        assert ("steps-dim-range", "steps_dim") in flagged(
            matmul(256),
            Decision(grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=5),
        )

    def test_steps_extent(self):
        # 512 sequenced steps over a contraction of extent 256.
        stmt = matmul_rect(1024, 256, 1024)
        assert ("steps-extent", "steps_dim") in flagged(
            stmt,
            Decision(grid=(512,), dist=("i",), seq="k", steps_dim=0),
        )

    def test_rotation_range(self):
        stmt = matmul(256)
        base = dict(grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0)
        assert ("rotation-range", "rotate") in flagged(
            stmt, Decision(rotate=(7,), **base)
        )
        assert ("rotation-range", "rotate") in flagged(
            stmt, Decision(rotate=(0, 0), **base)
        )

    def test_rotation_without_seq(self):
        assert ("rotation-without-seq", "rotate") in flagged(
            matmul(256),
            Decision(grid=(2, 2), dist=("i", "j"), rotate=(0,)),
        )

    def test_rotation_aliases_dest(self):
        # The rotation source dimension carries the sequenced variable
        # itself: the source set aliases the destination loop.
        assert ("rotation-aliases-dest", "rotate") in flagged(
            matmul(256),
            Decision(
                grid=(2, 2), dist=("i", "k"), seq="k", steps_dim=0,
                rotate=(1,),
            ),
        )

    def test_tile_untileable(self):
        stmt = matmul(256)
        # The output is never tileable; neither is an unknown tensor.
        assert ("tile-untileable", "tiled") in flagged(
            stmt, Decision(grid=(4,), dist=("i",), tiled=("A",))
        )
        assert ("tile-untileable", "tiled") in flagged(
            stmt, Decision(grid=(4,), dist=("i",), tiled=("Z",))
        )
        # B(i,k) is indexed by every grid dimension under dist=(i,):
        # no free grid dimension to tile its k mode across.
        assert ("tile-untileable", "tiled") in flagged(
            stmt, Decision(grid=(4,), dist=("i",), tiled=("B",))
        )
        # C(k,j) is not indexed by i and has untiled reduction mode k.
        assert ("tile-untileable", "tiled") not in flagged(
            stmt, Decision(grid=(4,), dist=("i",), tiled=("C",))
        )

    def test_step_comm_invalid(self):
        stmt = ttm(64)
        base = dict(grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0)
        # Not tiled at all.
        assert ("step-comm-invalid", "step_comm") in flagged(
            stmt, Decision(step_comm=("B",), **base)
        )
        # Tiled, but the sequenced variable k does not index C... it
        # does (C(k,l)); use a tensor k genuinely does not index: none
        # in ttm, so check matmul where k indexes both inputs and the
        # clean case stays clean.
        assert ("step-comm-invalid", "step_comm") not in flagged(
            matmul(256), LEGAL_CANNON
        )

    def test_bad_output_style(self):
        assert ("bad-output-style", "output_style") in flagged(
            matmul(256),
            Decision(grid=(4,), dist=("i",), output_style="weird"),
        )

    def test_bad_leaf(self):
        assert ("bad-leaf", "leaf") in flagged(
            matmul(256), Decision(grid=(4,), dist=("i",), leaf="magic")
        )

    def test_check_legal_raises_with_diagnostics(self):
        with pytest.raises(LegalityError) as exc:
            check_legal(
                matmul(256), Decision(grid=(2, 2), dist=("i", "i"))
            )
        assert any(d.rule == "duplicate-var" for d in exc.value.diagnostics)
        # LegalityError is a ScheduleError: existing handlers still work.
        assert isinstance(exc.value, ScheduleError)


class TestRealizeIntegration:
    def test_realize_rejects_illegal_decisions(self):
        stmt = matmul(256)
        cluster = Cluster.cpu_cluster(2)
        machine = Machine(cluster, Grid(2, 2))
        with pytest.raises(LegalityError) as exc:
            realize(
                stmt, machine,
                Decision(grid=(4,), dist=("i",)),
            )
        assert any(
            d.rule == "grid-factorization" for d in exc.value.diagnostics
        )
        with pytest.raises(LegalityError):
            realize(
                stmt, machine,
                Decision(grid=(2, 2), dist=("i", "z")),
            )


class TestEnumeratedSpaceIsLegal:
    @pytest.mark.parametrize(
        "assignment", [matmul(512), ttm(64), mttkrp(64, r=16)],
        ids=["matmul", "ttm", "mttkrp"],
    )
    def test_every_candidate_verifies(self, assignment):
        procs = 8
        space = enumerate_space(assignment, procs)
        assert space
        for decision in space:
            diags = verify_legality(assignment, decision, num_procs=procs)
            assert diags == [], (
                f"{decision.encode()} flagged: "
                f"{'; '.join(map(str, diags))}"
            )
