"""The trace sanitizer: zero findings across the parity-suite kernels,
and one positive test per rule on deliberately corrupted traces."""

import dataclasses

import pytest

from repro import Format, Grid, Machine, TensorVar
from repro.algorithms.higher_order import innerprod, mttkrp
from repro.algorithms.matmul import cannon, cosma, solomonik, summa
from repro.analysis import sanitize_trace
from repro.core.transfer import transfer_kernel
from repro.machine.cluster import Cluster
from repro.runtime.orbit import OrbitExecutor
from repro.util.errors import TraceSanityError


def m44():
    return Machine(Cluster.cpu_cluster(8), Grid(4, 4))


def m222():
    return Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))


PARITY_KERNELS = [
    ("solomonik", lambda: solomonik(m222(), 256)),
    ("solomonik-prime", lambda: solomonik(m222(), 101)),
    ("mttkrp", lambda: mttkrp(m222(), 64, r=16)),
    ("innerprod", lambda: innerprod(m44(), 64)),
    ("cosma", lambda: cosma(Cluster.cpu_cluster(8), 256)),
    ("cannon", lambda: cannon(m44(), 256)),
    ("cannon-prime", lambda: cannon(m44(), 257)),
    ("summa", lambda: summa(m44(), 256)),
    (
        "transfer",
        lambda: transfer_kernel(
            TensorVar("S", (128, 128), Format("xy -> xy")),
            Format("xy -> x*"),
            Machine(Cluster.cpu_cluster(8), Grid(4, 4)),
        ),
    ),
]


class TestCleanTraces:
    @pytest.mark.parametrize(
        "build", [b for _, b in PARITY_KERNELS],
        ids=[n for n, _ in PARITY_KERNELS],
    )
    def test_zero_findings_batched(self, build):
        kernel = build()
        result = kernel.trace(check_capacity=False, mode="batched")
        assert sanitize_trace(kernel.plan, result.trace) == []

    @pytest.mark.parametrize(
        "build", [b for _, b in PARITY_KERNELS],
        ids=[n for n, _ in PARITY_KERNELS],
    )
    def test_sanitize_mode_passes(self, build):
        # The opt-in executor debug mode: raises on any finding.
        kernel = build()
        kernel.trace(check_capacity=False, mode="batched", sanitize=True)

    def test_orbit_sanitize_mode_re_executes_full_trace(self):
        kernel = cannon(m44(), 256)
        executor = OrbitExecutor(kernel.plan, sanitize=True)
        executor.run()
        assert executor.sanity_findings == []


def clean_trace(kernel):
    return kernel.trace(check_capacity=False, mode="batched").trace


def step_with_copies(trace):
    for step in trace.steps:
        if step.copies:
            return step
    raise AssertionError("trace has no copies")


class TestCorruptedTraces:
    def test_unknown_tensor(self):
        kernel = cannon(m44(), 256)
        trace = clean_trace(kernel)
        step = step_with_copies(trace)
        step.copies[0] = dataclasses.replace(step.copies[0], tensor="Z")
        findings = sanitize_trace(kernel.plan, trace)
        assert any(f.rule == "unknown-tensor" for f in findings)

    def test_stale_source(self):
        kernel = cannon(m44(), 256)
        trace = clean_trace(kernel)
        # Rotate a mid-trace fetch to read from a processor that never
        # owned nor received the rectangle.
        procs = kernel.machine.cluster.processors
        corrupted = None
        for step in trace.steps:
            for idx, copy in enumerate(step.copies):
                if copy.reduce:
                    continue
                src = copy.src_proc
                other = next(
                    p for p in procs
                    if p.proc_id not in (src.proc_id, copy.dst_proc.proc_id)
                )
                step.copies[idx] = dataclasses.replace(
                    copy, src_proc=other, src_coords=(),
                )
                corrupted = step.copies[idx]
                break
            if corrupted is not None:
                break
        assert corrupted is not None
        findings = sanitize_trace(kernel.plan, trace)
        assert any(f.rule == "stale-source" for f in findings)

    def test_write_write_race(self):
        kernel = cannon(m44(), 256)
        trace = clean_trace(kernel)
        step = next(
            s for s in trace.steps
            if any(not c.reduce for c in s.copies)
        )
        copy = next(c for c in step.copies if not c.reduce)
        procs = kernel.machine.cluster.processors
        other = next(
            p for p in procs
            if p.proc_id not in (copy.src_proc.proc_id,
                                 copy.dst_proc.proc_id)
        )
        # A second overlapping write to the same destination from a
        # different source in the same phase.
        step.copies.append(dataclasses.replace(
            copy, src_proc=other, src_coords=(),
        ))
        findings = sanitize_trace(kernel.plan, trace)
        assert any(f.rule == "write-write-race" for f in findings)

    def test_reduction_to_non_owner(self):
        kernel = solomonik(m222(), 256)
        trace = clean_trace(kernel)
        corrupted = False
        for step in trace.steps:
            for idx, copy in enumerate(step.copies):
                if not copy.reduce:
                    continue
                procs = kernel.machine.cluster.processors
                other = next(
                    p for p in procs
                    if p.proc_id != copy.dst_proc.proc_id
                )
                step.copies[idx] = dataclasses.replace(
                    copy, dst_proc=other, dst_coords=(),
                )
                corrupted = True
                break
            if corrupted:
                break
        assert corrupted
        findings = sanitize_trace(kernel.plan, trace)
        assert any(f.rule == "reduction-order" for f in findings)

    def test_overwrite_and_reduce_in_one_phase(self):
        kernel = solomonik(m222(), 256)
        trace = clean_trace(kernel)
        step = next(
            s for s in trace.steps if any(c.reduce for c in s.copies)
        )
        copy = next(c for c in step.copies if c.reduce)
        # The same rect both reduced into and overwritten at one
        # destination within one phase.
        step.copies.append(dataclasses.replace(copy, reduce=False))
        findings = sanitize_trace(kernel.plan, trace)
        assert any(f.rule == "reduction-order" for f in findings)

    def test_sanitize_mode_raises(self):
        kernel = cannon(m44(), 256)
        executor_trace = clean_trace(kernel)
        step = step_with_copies(executor_trace)
        step.copies[0] = dataclasses.replace(step.copies[0], tensor="Z")
        from repro.runtime.executor import Executor

        executor = Executor(kernel.plan, materialize=False, sanitize=True)
        with pytest.raises(TraceSanityError) as exc:
            executor._sanity_check(executor_trace)
        assert exc.value.findings
