"""Tests for the comparison-system models (ScaLAPACK, CTF, COSMA)."""

import pytest

from repro import Cluster
from repro.baselines.cosma import cosma_reference_matmul
from repro.baselines.ctf import (
    best_25d_grid,
    best_rect_grid,
    ctf_innerprod,
    ctf_matmul,
    ctf_mttkrp,
    ctf_ttm,
    ctf_ttv,
    redistribution_steps,
)
from repro.baselines.scalapack import best_2d_grid, scalapack_matmul


@pytest.fixture(scope="module")
def cpu8():
    return Cluster.cpu_cluster(8)


class TestGridSelection:
    def test_best_2d_grid(self):
        assert best_2d_grid(16) == (4, 4)
        assert best_2d_grid(8) == (4, 2)
        assert best_2d_grid(7) == (7, 1)

    def test_best_25d_grid(self):
        assert best_25d_grid(16) == (4, 4, 1)
        # 32 = 4*4*2 with c | q.
        assert best_25d_grid(32) == (4, 4, 2)
        assert best_25d_grid(1) == (1, 1, 1)

    def test_best_rect_grid_matvec(self):
        gx, gy = best_rect_grid(8, 1_000_000, 1)
        assert gy == 1 and gx == 8

    def test_best_rect_grid_square(self):
        assert best_rect_grid(16, 4096, 4096) == (4, 4)


class TestRedistribution:
    def test_steps_move_all_bytes(self, cpu8):
        steps = redistribution_steps(cpu8, 16e9, "fold")
        assert len(steps) == 1
        moved = sum(c.nbytes for c in steps[0].copies)
        assert moved == pytest.approx(16e9, rel=0.01)

    def test_zero_bytes_no_steps(self, cpu8):
        assert redistribution_steps(cpu8, 0, "fold") == []


class TestMatmulBaselines:
    def test_scalapack_below_peak(self, cpu8):
        rep = scalapack_matmul(cpu8, 16384)
        assert 300 < rep.gflops_per_node < 700

    def test_cosma_near_peak(self, cpu8):
        rep = cosma_reference_matmul(cpu8, 16384)
        assert rep.gflops_per_node > 650

    def test_cosma_restricted_slower(self, cpu8):
        full = cosma_reference_matmul(cpu8, 16384)
        restricted = cosma_reference_matmul(cpu8, 16384, restricted_cpus=True)
        assert restricted.gflops_per_node < full.gflops_per_node

    def test_ctf_matmul_reasonable(self, cpu8):
        rep = ctf_matmul(cpu8, 16384)
        assert 300 < rep.gflops_per_node < 700

    def test_cosma_gpu_out_of_core(self):
        gpu = Cluster.gpu_cluster(1)
        rep = cosma_reference_matmul(gpu, 20000)
        # Host-resident out-of-core GEMM: about half of resident rate.
        assert rep.gflops_per_node < 16000


class TestHigherOrderBaselines:
    def test_ttv_collapses_past_one_node(self):
        one = ctf_ttv(Cluster.cpu_cluster(1), 704)
        many = ctf_ttv(Cluster.cpu_cluster(8), 1408)
        assert many.gbytes_per_node < 0.5 * one.gbytes_per_node

    def test_innerprod_scales_flat(self):
        one = ctf_innerprod(Cluster.cpu_cluster(1), 704)
        many = ctf_innerprod(Cluster.cpu_cluster(8), 1408)
        assert many.gbytes_per_node > 0.8 * one.gbytes_per_node

    def test_ttm_pays_redistribution(self, cpu8):
        rep = ctf_ttm(cpu8, 1408, 64)
        assert rep.inter_node_bytes > float(1408) ** 3 * 8 * 0.5

    def test_mttkrp_two_stages(self, cpu8):
        rep = ctf_mttkrp(cpu8, 1408, 64)
        assert rep.total_flops > 0
        assert rep.gflops_per_node > 0
