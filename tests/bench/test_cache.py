"""Tests for the plan/trace cache behind the benchmark sweeps."""

import pytest

from repro.algorithms.matmul import cannon, summa
from repro.bench.cache import (
    SimulationCache,
    cached_baseline,
    cluster_signature,
    kernel_fingerprint,
)
from repro.bench.weak_scaling import matmul_weak_scaling
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.util.errors import OutOfMemoryError


@pytest.fixture
def machine():
    return Machine(Cluster.cpu_cluster(2), Grid(2, 2))


class TestFingerprints:
    def test_same_config_same_fingerprint(self, machine):
        # Two independently compiled kernels of the same configuration
        # share a fingerprint — the property that lets sweeps reuse
        # results across node counts.
        assert kernel_fingerprint(cannon(machine, 256)) == kernel_fingerprint(
            cannon(machine, 256)
        )

    def test_distinct_configs_distinct_fingerprints(self, machine):
        base = kernel_fingerprint(cannon(machine, 256))
        assert kernel_fingerprint(cannon(machine, 320)) != base  # size
        assert kernel_fingerprint(summa(machine, 256)) != base  # schedule
        other = Machine(Cluster.cpu_cluster(4), Grid(2, 4))
        assert kernel_fingerprint(cannon(other, 256)) != base  # machine

    def test_cluster_signature_distinguishes_kinds(self):
        cpu = cluster_signature(Cluster.cpu_cluster(2))
        gpu = cluster_signature(Cluster.gpu_cluster(2))
        assert cpu != gpu
        assert cpu == cluster_signature(Cluster.cpu_cluster(2))


class TestSimulationCache:
    def test_second_simulation_is_a_hit(self, machine):
        cache = SimulationCache()
        r1 = cache.simulate(cannon(machine, 256), LASSEN)
        r2 = cache.simulate(cannon(machine, 256), LASSEN)
        assert cache.misses == 1 and cache.hits == 1
        assert r2 is r1

    def test_params_are_part_of_the_key(self, machine):
        cache = SimulationCache()
        cache.simulate(cannon(machine, 256), LASSEN)
        cache.simulate(cannon(machine, 256), LASSEN.with_(overlap=False))
        assert cache.misses == 2

    def test_executor_mode_is_part_of_the_key(self, machine):
        # Orbit and batched runs must never alias — a stale entry from
        # one mode would defeat the parity guarantees of the other.
        cache = SimulationCache()
        r1 = cache.simulate(cannon(machine, 256), LASSEN, mode="orbit")
        r2 = cache.simulate(cannon(machine, 256), LASSEN, mode="batched")
        assert cache.misses == 2 and cache.hits == 0
        assert r1 == r2  # parity, but distinct cache entries
        cache.simulate(cannon(machine, 256), LASSEN, mode="orbit")
        assert cache.hits == 1

    def test_param_sweep_never_aliases(self, machine):
        # Every distinct MachineParams lands in its own slot.
        cache = SimulationCache()
        kern = cannon(machine, 256)
        reports = [
            cache.simulate(kern, LASSEN.with_(nic_bw=bw))
            for bw in (1e9, 2e9, 4e9)
        ]
        assert cache.misses == 3
        assert len({r.total_time for r in reports}) == 3

    def test_export_install_roundtrip(self, machine):
        cache = SimulationCache()
        report = cache.simulate(cannon(machine, 256), LASSEN)
        other = SimulationCache()
        before = other.key_set()
        other.install(cache.export(exclude=before))
        assert other.simulate(cannon(machine, 256), LASSEN) == report
        assert other.misses == 0 and other.hits == 1

    def test_oom_outcomes_are_cached(self):
        # A framebuffer-pinned kernel on a tiny GPU cluster OOMs; the
        # second attempt must re-raise without re-simulating.
        cluster = Cluster.gpu_cluster(1, gpus_per_node=4, framebuffer_gib=2)
        machine = Machine(cluster, Grid(2, 2))
        cache = SimulationCache()
        with pytest.raises(OutOfMemoryError):
            cache.simulate(cannon(machine, 40000, memory=MemoryKind.GPU_FB))
        with pytest.raises(OutOfMemoryError):
            cache.simulate(cannon(machine, 40000, memory=MemoryKind.GPU_FB))
        assert cache.misses == 1 and cache.hits == 1


class TestCachedBaseline:
    def test_memoizes_per_arguments(self):
        cluster = Cluster.cpu_cluster(2)
        calls = []

        def model(cl, n):
            calls.append(n)
            from repro.baselines.scalapack import scalapack_matmul

            return scalapack_matmul(cl, n)

        r1 = cached_baseline(model, cluster, 512)
        r2 = cached_baseline(model, cluster, 512)
        cached_baseline(model, cluster, 1024)
        assert calls == [512, 1024]
        assert r2 is r1


class TestWeakScalingSweep:
    def test_small_sweep_produces_rows(self):
        rows = matmul_weak_scaling(
            node_counts=[1, 2], base_n=256, algorithms=("cannon", "summa")
        )
        assert len(rows) == 4
        assert {r["system"] for r in rows} == {"cannon", "summa"}
        assert all(
            r["value"] is not None and r["value"] > 0 for r in rows
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            matmul_weak_scaling(node_counts=[1], algorithms=("strassen",))
