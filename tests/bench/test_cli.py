"""Smoke tests for the ``python -m repro.bench`` figure CLI."""

import pytest

from repro.bench.__main__ import main, parse_nodes


class TestCli:
    def test_parse_nodes(self):
        assert parse_nodes("1,4,16") == [1, 4, 16]
        assert parse_nodes("8") == [8]

    def test_ttv_runs(self, capsys):
        assert main(["ttv", "--nodes", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "ttv weak scaling" in out
        assert "Ours" in out

    def test_fig15a_small(self, capsys):
        assert main(["fig15a", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "ScaLAPACK" in out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])
