"""Smoke tests for the ``python -m repro.bench`` figure CLI."""

import json

import pytest

from repro.bench.__main__ import main, parse_nodes


class TestCli:
    def test_parse_nodes(self):
        assert parse_nodes("1,4,16") == [1, 4, 16]
        assert parse_nodes("8") == [8]

    def test_ttv_runs(self, capsys):
        assert main(["ttv", "--nodes", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "ttv weak scaling" in out
        assert "Ours" in out

    def test_fig15a_small(self, capsys):
        assert main(["fig15a", "--nodes", "1"]) == 0
        out = capsys.readouterr().out
        assert "ScaLAPACK" in out

    def test_bad_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])

    def test_weak4096_accepts_node_override(self, capsys):
        assert main(["weak4096", "--nodes", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "Weak scaling to 4 nodes" in out
        assert "cannon" in out

    def test_parallel_jobs_match_sequential(self, capsys):
        assert main(["weak512", "--nodes", "1,2,4", "--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert main(["weak512", "--nodes", "1,2,4"]) == 0
        sequential = capsys.readouterr().out
        assert parallel == sequential

    def test_profile_prints_and_logs(self, capsys, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert main(["ttv", "--nodes", "1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Wall-clock profile" in out
        records = json.loads(log.read_text())
        assert records and records[0]["name"] == "cli:ttv"
        assert records[0]["wall_s"] >= 0

    def test_failing_sweep_exits_nonzero(self, capsys, monkeypatch):
        import repro.bench.__main__ as cli

        def boom(**kwargs):
            raise RuntimeError("sweep exploded")

        monkeypatch.setattr(cli, "fig15a_cpu_matmul", boom)
        assert main(["fig15a", "--nodes", "1"]) == 1
        err = capsys.readouterr().err
        assert "benchmark sweep failed" in err

    def test_profile_persists_when_sweep_fails(
        self, capsys, tmp_path, monkeypatch
    ):
        # The figures that finished before the crash still land in the
        # perf log, and the summary record is marked failed.
        import repro.bench.__main__ as cli

        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))

        def boom(*args, **kwargs):
            raise RuntimeError("sweep exploded")

        monkeypatch.setattr(cli, "fig16_higher_order", boom)
        assert main(["all", "--nodes", "1", "--profile"]) == 1
        out = capsys.readouterr().out
        assert "Wall-clock profile" in out
        records = json.loads(log.read_text())
        by_name = {r["name"]: r for r in records}
        assert "cli:fig15a" in by_name
        assert "cli:fig15b" in by_name
        summary = by_name["profile:all"]
        assert summary["metrics"]["failed"] is True
        assert "counters" in summary["metrics"]
