"""Fork-pool worker crash handling: retry once, then surface.

A sweep point that dies in a forked worker must not poison the whole
``pool.map`` (losing every other point's work) and must never hang the
driver: the parent retries the point once in-process, and a second
failure raises with the *original worker* traceback attached.
"""

import multiprocessing
import os

import pytest

from repro.bench import parallel
from repro.bench.parallel import register_sweep, run_points

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

_PARENT_PID = os.getpid()


@pytest.fixture
def multicore(monkeypatch):
    """Pretend we have cores: single-core runners degrade run_points to
    the sequential path, which would bypass the pool entirely."""
    monkeypatch.setattr(os, "cpu_count", lambda: 4)


def _flaky_point(value: int):
    """Fails in forked workers, succeeds in the parent (the retry)."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("worker-only crash")
    return [("row", value)]


def _broken_point(value: int):
    raise ValueError(f"always broken ({value})")


def _good_point(value: int):
    return [("row", value)]


register_sweep("_flaky_point", _flaky_point)
register_sweep("_broken_point", _broken_point)
register_sweep("_good_point", _good_point)


class TestRetry:
    @fork_only
    def test_worker_crash_recovers_via_in_process_retry(self, multicore):
        global _PARENT_PID
        _PARENT_PID = os.getpid()
        rows = run_points(
            "_flaky_point", [{"value": v} for v in range(4)], jobs=2
        )
        assert rows == [("row", v) for v in range(4)]

    @fork_only
    def test_second_failure_surfaces_worker_traceback(self, multicore):
        with pytest.raises(RuntimeError) as exc:
            run_points(
                "_broken_point", [{"value": v} for v in range(3)], jobs=2
            )
        message = str(exc.value)
        assert "failed in a pool worker" in message
        assert "original worker traceback" in message
        assert "always broken" in message
        # The chained cause is the retry's own exception.
        assert isinstance(exc.value.__cause__, ValueError)

    @fork_only
    def test_healthy_points_unaffected(self, multicore):
        rows = run_points(
            "_good_point", [{"value": v} for v in range(5)], jobs=3
        )
        assert rows == [("row", v) for v in range(5)]

    def test_sequential_path_propagates_directly(self):
        """With jobs<=1 there is no worker to crash: exceptions surface
        unchanged (no retry wrapper)."""
        with pytest.raises(ValueError, match="always broken"):
            run_points("_broken_point", [{"value": 0}], jobs=1)


class TestRunPointEnvelope:
    def test_run_point_never_raises(self):
        status, payload = parallel._run_point(("_broken_point", {"value": 1}))
        assert status == "err"
        assert "always broken" in payload

    def test_run_point_ok_envelope(self):
        status, payload = parallel._run_point(("_good_point", {"value": 7}))
        assert status == "ok"
        rows, _sim, _base, metrics_delta, spans = payload
        assert rows == [("row", 7)]
        # The observability deltas ride the same envelope.
        assert set(metrics_delta) <= {"counters", "gauges"}
        assert isinstance(spans, list)

    def test_run_point_strict_raises(self):
        with pytest.raises(ValueError):
            parallel._run_point_strict(("_broken_point", {"value": 1}))
