"""The BENCH_simulator.json perf trajectory writer."""

import json
import multiprocessing

import pytest

from repro.bench.perf_log import append_record, log_path


class TestPerfLog:
    def test_appends_records(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert append_record("weak512", 1.25, metrics={"gflops": 636.1})
        assert append_record("weak4096", 48.8)
        records = json.loads(log.read_text())
        assert [r["name"] for r in records] == ["weak512", "weak4096"]
        assert records[0]["wall_s"] == 1.25
        assert records[0]["metrics"] == {"gflops": 636.1}
        assert all("timestamp" in r for r in records)

    def test_never_clobbers_foreign_content(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        log.write_text("not json at all")
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert not append_record("weak512", 1.0)
        assert log.read_text() == "not json at all"

    def test_default_path_is_repo_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_LOG", raising=False)
        path = log_path()
        assert path.name == "BENCH_simulator.json"
        # src/repro/bench -> three levels up.
        assert (path.parent / "src" / "repro" / "bench").is_dir()


class TestCrashSafety:
    def test_salvages_and_quarantines_torn_tail(self, tmp_path, monkeypatch):
        """A log truncated mid-record keeps its valid prefix; the corrupt
        original is quarantined next to the log."""
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert append_record("one", 1.0)
        assert append_record("two", 2.0)
        intact = log.read_text()
        torn = intact[: intact.rindex("{") + 20]  # cut inside record two
        log.write_text(torn)
        assert append_record("three", 3.0)
        records = json.loads(log.read_text())
        assert [r["name"] for r in records] == ["one", "three"]
        quarantine = tmp_path / "BENCH_simulator.json.corrupt"
        assert quarantine.read_text() == torn

    def test_truncated_before_first_record(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        log.write_text("[\n {\"name\": \"half")
        assert append_record("fresh", 1.0)
        records = json.loads(log.read_text())
        assert [r["name"] for r in records] == ["fresh"]

    def test_atomic_replace_leaves_no_partial_log(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert append_record("one", 1.0)
        # The write path goes through a temp file + os.replace: after a
        # successful append no *.tmp litter remains and the log parses.
        assert append_record("two", 2.0)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert len(json.loads(log.read_text())) == 2

    def test_parallel_appends_lose_nothing(self, tmp_path, monkeypatch):
        """Concurrent appenders (forked --jobs workers) serialize on the
        lock: every record lands and the log stays a valid JSON list."""
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_many, args=(str(log), i))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        records = json.loads(log.read_text())
        assert len(records) == 4 * 8
        assert {r["name"] for r in records} == {
            f"w{i}:{j}" for i in range(4) for j in range(8)
        }


def _append_many(log, worker):
    import os

    os.environ["REPRO_BENCH_LOG"] = log
    for j in range(8):
        assert append_record(f"w{worker}:{j}", 0.1)
