"""The BENCH_simulator.json perf trajectory writer."""

import json

from repro.bench.perf_log import append_record, log_path


class TestPerfLog:
    def test_appends_records(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert append_record("weak512", 1.25, metrics={"gflops": 636.1})
        assert append_record("weak4096", 48.8)
        records = json.loads(log.read_text())
        assert [r["name"] for r in records] == ["weak512", "weak4096"]
        assert records[0]["wall_s"] == 1.25
        assert records[0]["metrics"] == {"gflops": 636.1}
        assert all("timestamp" in r for r in records)

    def test_never_clobbers_foreign_content(self, tmp_path, monkeypatch):
        log = tmp_path / "BENCH_simulator.json"
        log.write_text("not json at all")
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert not append_record("weak512", 1.0)
        assert log.read_text() == "not json at all"

    def test_default_path_is_repo_root(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_LOG", raising=False)
        path = log_path()
        assert path.name == "BENCH_simulator.json"
        # src/repro/bench -> three levels up.
        assert (path.parent / "src" / "repro" / "bench").is_dir()
