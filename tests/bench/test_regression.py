"""The benchmark-tier perf-regression gate (bench/regression.py)."""

import json

import pytest

from repro.bench.regression import (
    compare,
    compare_counters,
    latest_by_name,
    main,
)


def write_log(path, records):
    path.write_text(json.dumps(records))
    return path


def rec(name, wall_s, counters=None):
    record = {"name": name, "wall_s": wall_s, "timestamp": 0}
    if counters is not None:
        record["metrics"] = {"counters": counters}
    return record


class TestCompare:
    def test_latest_entry_wins(self):
        latest = latest_by_name([rec("a", 1.0), rec("a", 2.0)])
        assert latest["a"]["wall_s"] == 2.0

    def test_regression_needs_relative_and_absolute_slowdown(self):
        base = {"a": rec("a", 1.0), "b": rec("b", 0.01), "c": rec("c", 1.0)}
        cur = {"a": rec("a", 1.5), "b": rec("b", 0.02), "c": rec("c", 1.04)}
        regressions, _, _ = compare(base, cur)
        # a: +50% and +0.5s -> regressed; b: +100% but only +0.01s
        # (under the absolute floor); c: +0.04s but under 25%.
        assert [r[0] for r in regressions] == ["a"]

    def test_disjoint_names_never_fail(self):
        regressions, missing, new = compare(
            {"old": rec("old", 1.0)}, {"new": rec("new", 9.0)}
        )
        assert regressions == []
        assert missing == ["old"]
        assert new == ["new"]


class TestCli:
    def test_green_run_exits_zero(self, tmp_path, capsys):
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        cur = write_log(tmp_path / "cur.json", [rec("sweep", 1.1)])
        assert main(["--baseline", str(base), "--log", str(cur)]) == 0
        assert "no tracked timing regressed" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        cur = write_log(tmp_path / "cur.json", [rec("sweep", 2.0)])
        assert main(["--baseline", str(base), "--log", str(cur)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_compares_latest_entries_only(self, tmp_path):
        base = write_log(tmp_path / "base.json", [rec("sweep", 5.0)])
        cur = write_log(
            tmp_path / "cur.json", [rec("sweep", 9.0), rec("sweep", 5.1)]
        )
        assert main(["--baseline", str(base), "--log", str(cur)]) == 0

    def test_threshold_is_configurable(self, tmp_path):
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        cur = write_log(tmp_path / "cur.json", [rec("sweep", 1.2)])
        args = ["--baseline", str(base), "--log", str(cur)]
        assert main(args) == 0
        assert main(args + ["--threshold", "0.1"]) == 1

    def test_default_log_honours_env_override(
        self, tmp_path, monkeypatch
    ):
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        cur = write_log(tmp_path / "cur.json", [rec("sweep", 1.0)])
        monkeypatch.setenv("REPRO_BENCH_LOG", str(cur))
        assert main(["--baseline", str(base)]) == 0

    def test_unreadable_log_is_a_hard_error(self, tmp_path):
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        with pytest.raises(SystemExit):
            main(["--baseline", str(base), "--log", str(tmp_path / "x")])
        not_a_list = tmp_path / "obj.json"
        not_a_list.write_text("{}")
        with pytest.raises(SystemExit):
            main(["--baseline", str(base), "--log", str(not_a_list)])


class TestCounterGate:
    def test_fallback_reappearance_fails(self):
        base = {"s": rec("s", 1.0, {"orbit.fallback_events": 0})}
        cur = {"s": rec("s", 1.0, {"orbit.fallback_events": 3})}
        findings, pre_schema = compare_counters(base, cur)
        assert [f[1] for f in findings] == ["orbit.fallback_events"]
        assert pre_schema == []

    def test_nonzero_baseline_fallbacks_do_not_arm_the_rule(self):
        base = {"s": rec("s", 1.0, {"orbit.fallback_events": 2})}
        cur = {"s": rec("s", 1.0, {"orbit.fallback_events": 5})}
        findings, _ = compare_counters(base, cur)
        assert findings == []

    def test_replay_rate_collapse_fails(self):
        base = {"s": rec("s", 1.0, {
            "costmodel.step_price_hits": 90,
            "costmodel.step_price_misses": 10,
        })}
        cur = {"s": rec("s", 1.0, {
            "costmodel.step_price_hits": 10,
            "costmodel.step_price_misses": 90,
        })}
        findings, _ = compare_counters(base, cur)
        assert any(f[1] == "costmodel.step_price_hits" for f in findings)

    def test_phase_replay_rate_collapse_fails(self):
        base = {"s": rec("s", 1.0, {
            "orbit.phase_replays": 80, "orbit.steps": 100,
        })}
        cur = {"s": rec("s", 1.0, {
            "orbit.phase_replays": 5, "orbit.steps": 100,
        })}
        findings, _ = compare_counters(base, cur)
        assert any(f[1] == "orbit.phase_replays" for f in findings)

    def test_stable_rates_pass(self):
        counters = {
            "orbit.fallback_events": 0,
            "orbit.phase_replays": 80, "orbit.steps": 100,
            "costmodel.step_price_hits": 90,
            "costmodel.step_price_misses": 10,
        }
        base = {"s": rec("s", 1.0, counters)}
        cur = {"s": rec("s", 1.0, dict(counters))}
        findings, pre_schema = compare_counters(base, cur)
        assert findings == []
        assert pre_schema == []

    def test_pre_schema_baseline_reported_not_failed(self, tmp_path,
                                                     capsys):
        # Baseline written before the metrics schema: no counters at
        # all. The gate reports it and stays green.
        base = write_log(tmp_path / "base.json", [rec("sweep", 1.0)])
        cur = write_log(
            tmp_path / "cur.json",
            [rec("sweep", 1.0, {"orbit.fallback_events": 9})],
        )
        assert main(["--baseline", str(base), "--log", str(cur)]) == 0
        out = capsys.readouterr().out
        assert "predates the metrics schema" in out

    def test_counter_regression_fails_cli(self, tmp_path, capsys):
        base = write_log(
            tmp_path / "base.json",
            [rec("sweep", 1.0, {"orbit.fallback_events": 0})],
        )
        cur = write_log(
            tmp_path / "cur.json",
            [rec("sweep", 1.0, {"orbit.fallback_events": 2})],
        )
        assert main(["--baseline", str(base), "--log", str(cur)]) == 1
        out = capsys.readouterr().out
        assert "EFFICIENCY REGRESSED" in out
