"""Tests for the weak-scaling sizing and grid-selection helpers."""


import pytest

from repro.bench.weak_scaling import (
    cube_grid,
    factor3,
    grid_25d,
    square_grid,
    weak_cube_side,
    weak_matrix_size,
)


class TestProblemSizing:
    def test_matrix_scaling_law(self):
        base = 8192
        n1 = weak_matrix_size(base, 1)
        n16 = weak_matrix_size(base, 16)
        # Memory per node constant: n^2/nodes constant -> n ~ sqrt(nodes).
        assert n16 / n1 == pytest.approx(4.0, rel=0.02)

    def test_cube_scaling_law(self):
        base = 800
        n1 = weak_cube_side(base, 1)
        n8 = weak_cube_side(base, 8)
        assert n8 / n1 == pytest.approx(2.0, rel=0.05)

    def test_rounding_multiple(self):
        assert weak_matrix_size(8192, 2, multiple=64) % 64 == 0
        assert weak_cube_side(700, 3, multiple=8) % 8 == 0


class TestGrids:
    def test_square_grid(self):
        assert square_grid(16) == (4, 4)
        assert square_grid(32) == (8, 4)
        assert square_grid(2) == (2, 1)

    def test_cube_grid_rounds(self):
        assert cube_grid(64) == (4, 4, 4)
        assert cube_grid(128) == (5, 5, 5)  # over/under-decomposes
        assert cube_grid(2) == (1, 1, 1)

    def test_factor3_uses_all_processors(self):
        for p in (2, 8, 24, 64, 512, 1024):
            gx, gy, gz = factor3(p)
            assert gx * gy * gz == p

    def test_factor3_balanced(self):
        assert factor3(512) == (8, 8, 8)
        assert factor3(128) == (8, 4, 4)

    def test_grid_25d_constraints(self):
        for p in (4, 16, 32, 64, 512, 1024):
            q, q2, c = grid_25d(p)
            assert q == q2
            assert q % c == 0
            assert q * q * c <= p

    def test_grid_25d_prefers_replication(self):
        q, _, c = grid_25d(32)
        assert (q, c) == (4, 2)
