"""Tests for CIN -> distributed plan lowering (Section 6.2)."""

import pytest

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    index_vars,
)
from repro.codegen.lower import lower_to_plan
from repro.codegen.plan import LaunchNode, LeafNode, SeqNode
from repro.util.errors import LoweringError


def gemm(n=8, fmt="xy -> xy"):
    f = Format(fmt)
    A = TensorVar("A", (n, n), f)
    B = TensorVar("B", (n, n), f)
    C = TensorVar("C", (n, n), f)
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j]), (A, B, C), (i, j, k)


class TestLaunchFlattening:
    def test_nested_distributed_loops_flatten(self):
        stmt, _, (i, j, k) = gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = Schedule(stmt).distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        assert isinstance(plan.root, LaunchNode)
        assert plan.root.vars == [io, jo]
        assert plan.root.machine_dims == [0, 1]

    def test_extent_mismatch_rejected(self):
        stmt, _, (i, j, k) = gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = Schedule(stmt).distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
        with pytest.raises(LoweringError):
            lower_to_plan(sched, Machine.flat(2, 3))

    def test_too_many_distributed_loops(self):
        stmt, _, (i, j, k) = gemm()
        io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
        sched = Schedule(stmt).distribute(
            [i, j, k], [io, jo, ko], [ii, ji, ki], Grid(2, 2, 2)
        )
        with pytest.raises(LoweringError):
            lower_to_plan(sched, Machine.flat(2, 2))


class TestLeafBlock:
    def test_default_all_loops_fold(self):
        stmt, _, _ = gemm()
        sched = Schedule(stmt)
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        assert isinstance(plan.root, LeafNode)
        assert len(plan.root.loop_vars) == 3

    def test_communicated_loop_stays_sequential(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .split(k, ko, ki, 4)
            .reorder([ko, ii, ji, ki])
            .communicate([B, C], ko)
        )
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        seq = plan.root.body
        assert isinstance(seq, SeqNode)
        assert seq.var == ko
        assert seq.comm == ["B", "C"]
        assert isinstance(seq.body, LeafNode)
        assert seq.body.loop_vars == [ii, ji, ki]

    def test_rotate_result_stays_sequential(self):
        stmt, _, (i, j, k) = gemm()
        io, ii, jo, ji, ko, ki, kos = index_vars("io ii jo ji ko ki kos")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .divide(k, ko, ki, 2)
            .reorder([ko, ii, ji, ki])
            .rotate(ko, [io, jo], kos)
        )
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        assert isinstance(plan.root.body, SeqNode)
        assert plan.root.body.var == kos

    def test_substitute_marks_kernel(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).substitute([i, j, k], "blas_gemm")
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        assert plan.root.kernel == "blas_gemm"

    def test_substitute_conflict_rejected(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        sched = Schedule(stmt).communicate(B, j).substitute([j, k], "gemm")
        with pytest.raises(LoweringError):
            lower_to_plan(sched, Machine.flat(2, 2))


class TestCommPlacement:
    def test_default_comm_at_leaf(self):
        stmt, _, _ = gemm()
        plan = lower_to_plan(Schedule(stmt), Machine.flat(2, 2))
        assert set(plan.root.comm) == {"A", "B", "C"}
        assert plan.root.flush == ["A"]

    def test_explicit_comm_at_launch(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .communicate(A, jo)
        )
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        assert plan.root.comm == ["A"]
        assert plan.root.flush == ["A"]
        assert set(plan.root.body.comm) == {"B", "C"}

    def test_output_identified(self):
        stmt, _, _ = gemm()
        plan = lower_to_plan(Schedule(stmt), Machine.flat(2, 2))
        assert plan.output == "A"

    def test_pretty_renders(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        io, ii, jo, ji, ko, ki = index_vars("io ii jo ji ko ki")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .split(k, ko, ki, 4)
            .reorder([ko, ii, ji, ki])
            .communicate(A, jo)
            .communicate([B, C], ko)
        )
        plan = lower_to_plan(sched, Machine.flat(2, 2))
        text = plan.pretty()
        assert "index_launch" in text
        assert "for ko" in text
        assert "fetch B chunk" in text


class TestHierarchicalLowering:
    def test_two_level_machine_dims(self):
        from repro import Cluster

        cl = Cluster.gpu_cluster(4, gpus_per_node=4)
        machine = Machine(cl, Grid(2, 2), Grid(2, 2))
        f = Format(["xy -> xy", "xy -> xy"])
        A = TensorVar("A", (16, 16), f)
        B = TensorVar("B", (16, 16), f)
        C = TensorVar("C", (16, 16), f)
        i, j, k = index_vars("i j k")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        io, ii, jo, ji = index_vars("io ii jo ji")
        iio, iii, jio, jii = index_vars("iio iii jio jii")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .distribute(
                [ii, ji], [iio, jio], [iii, jii], Grid(2, 2), level=1
            )
        )
        plan = lower_to_plan(sched, machine)
        assert isinstance(plan.root, LaunchNode)
        assert plan.root.machine_dims == [0, 1, 2, 3]
