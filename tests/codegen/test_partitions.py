"""Tests for Legion-style partition derivation (Section 6.2)."""

import pytest

from repro import Machine
from repro.algorithms import johnson, summa
from repro.codegen.partitions import derive_partitions, partition_report


@pytest.fixture(scope="module")
def summa_plan():
    return summa(Machine.flat(2, 2), 16).plan


class TestSummaPartitions:
    def test_one_partition_per_communicate(self, summa_plan):
        parts = {p.tensor: p for p in derive_partitions(summa_plan)}
        assert set(parts) == {"A", "B", "C"}

    def test_output_partition_disjoint_tiles(self, summa_plan):
        parts = {p.tensor: p for p in derive_partitions(summa_plan)}
        a = parts["A"]
        assert a.at_var == "jo"
        assert a.num_colors == 4
        assert a.is_disjoint()
        assert a.covers((16, 16))
        for rect in a.colors.values():
            assert rect.shape == (8, 8)

    def test_b_partition_is_aliased_row_panels(self, summa_plan):
        # B's chunks are shared along rows: an aliased partition whose
        # colors include the sequential ko index.
        parts = {p.tensor: p for p in derive_partitions(summa_plan)}
        b = parts["B"]
        assert b.at_var == "ko"
        assert not b.is_disjoint()
        # Every color is a row-panel of B: 8 rows x chunk columns.
        for rect in b.colors.values():
            assert rect.shape[0] == 8

    def test_report_renders(self, summa_plan):
        text = partition_report(summa_plan)
        assert "disjoint" in text
        assert "aliased" in text


class TestJohnsonPartitions:
    def test_task_start_partitions(self):
        plan = johnson(Machine.flat(2, 2, 2), 16).plan
        parts = {p.tensor: p for p in derive_partitions(plan)}
        # All three tensors are communicated at the launch.
        assert parts["B"].at_var == "ko"
        # Each of the 8 tasks gets one 8x8 tile of each matrix.
        for name in ("A", "B", "C"):
            assert parts[name].num_colors == 8
            for rect in parts[name].colors.values():
                assert rect.shape == (8, 8)

    def test_b_aliased_across_j(self):
        # B(i,k) does not depend on jo: the two jo values share tiles.
        plan = johnson(Machine.flat(2, 2, 2), 16).plan
        parts = {p.tensor: p for p in derive_partitions(plan)}
        assert not parts["B"].is_disjoint()
