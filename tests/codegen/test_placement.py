"""Tests for Section 5.3's placement-statement lowering."""

import numpy as np
import pytest

from repro import Format, Machine, TensorVar, compile_kernel
from repro.codegen.placement import (
    describe_placement,
    placement_schedule,
    placement_statement,
)
from repro.util.errors import DistributionError


class TestPlacementLowering:
    def test_row_distribution_example(self):
        # The paper's example: T xy -> x M lowers to
        # forall xo forall xi forall y ... divide, distribute, communicate.
        m = Machine.flat(3)
        T = TensorVar("T", (9, 4), Format("xy -> x"))
        sched = placement_schedule(T, m)
        text = sched.pretty()
        assert "distribute" in text
        assert "communicate(T)" in text
        vars_ = [f.var.name for f in sched.stmt.foralls()]
        assert vars_[0].endswith("o")  # divided outer loop first

    def test_tiled_distribution(self):
        m = Machine.flat(2, 2)
        T = TensorVar("T", (8, 8), Format("xy -> xy"))
        stmt = placement_statement(T, m)
        foralls = stmt.foralls()
        assert sum(1 for f in foralls if f.distributed) == 2

    def test_placement_executes_without_copies_when_matched(self, rng):
        # Placing a tensor already in its layout moves nothing.
        m = Machine.flat(2, 2)
        T = TensorVar("T", (8, 8), Format("xy -> xy"))
        kern = compile_kernel(placement_schedule(T, m), m)
        res = kern.execute({"T": rng.random((8, 8))}, verify=True)
        data_copies = [c for c in res.trace.copies if c.tensor == "T"]
        assert not data_copies

    def test_undistributed_rejected(self):
        m = Machine.flat(2)
        T = TensorVar("T", (8,), Format())
        with pytest.raises(DistributionError):
            placement_schedule(T, m)

    def test_describe(self):
        m = Machine.flat(2, 2)
        T = TensorVar("T", (8, 8), Format("xy -> xy"))
        text = describe_placement(T, m)
        assert "xy -> xy" in text
        assert "forall" in text


class TestTransfers:
    def test_row_to_column_redistribution(self, rng):
        from repro.core.transfer import transfer_kernel

        m = Machine.flat(4)
        src = TensorVar("T", (8, 8), Format("xy -> x"))
        kern = transfer_kernel(src, Format("yx -> x"), m)
        data = rng.random((8, 8))
        res = kern.execute({"T": data}, verify=False)
        np.testing.assert_allclose(res.outputs["T_re"], data)
        # Row -> column layout moves most of the matrix.
        moved = sum(c.nbytes for c in res.trace.copies if c.tensor == "T")
        assert moved >= 0.5 * data.nbytes

    def test_identity_transfer_free(self, rng):
        from repro.core.transfer import redistribution_bytes

        m = Machine.flat(4)
        src = TensorVar("T", (8, 8), Format("xy -> x"))
        assert redistribution_bytes(src, Format("xy -> x"), m) == 0

    def test_bytes_estimate_matches_execution(self, rng):
        from repro.core.transfer import (
            redistribution_bytes,
            transfer_kernel,
        )

        m = Machine.flat(4)
        src = TensorVar("T", (8, 8), Format("xy -> x"))
        estimated = redistribution_bytes(src, Format("yx -> x"), m)
        kern = transfer_kernel(src, Format("yx -> x"), m)
        res = kern.execute({"T": rng.random((8, 8))})
        assert res.trace.total_copy_bytes == estimated
