"""Shared fixtures and helpers for the test suite.

Also enforces the tier-1 timing budget: the suite self-reports its
wall-clock at the end of every run so speed regressions are visible in
CI logs, and with ``REPRO_ENFORCE_BUDGET=1`` a run slower than
``REPRO_TIER1_BUDGET_S`` (default 60 s) fails outright.
"""

import os
import time

import numpy as np
import pytest

from repro import Machine

_BUDGET_S = float(os.environ.get("REPRO_TIER1_BUDGET_S", "60"))
_suite_start = None
_over_budget = False


def pytest_sessionstart(session):
    global _suite_start
    _suite_start = time.monotonic()


def pytest_sessionfinish(session, exitstatus):
    global _over_budget
    if _suite_start is None:
        return
    wall = time.monotonic() - _suite_start
    _over_budget = wall > _BUDGET_S
    if _over_budget and os.environ.get("REPRO_ENFORCE_BUDGET"):
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _suite_start is None:
        return
    wall = time.monotonic() - _suite_start
    line = f"tier-1 wall-clock: {wall:.1f}s (budget {_BUDGET_S:.0f}s)"
    if _over_budget:
        enforced = bool(os.environ.get("REPRO_ENFORCE_BUDGET"))
        verdict = "FAILED" if enforced else "WARNING"
        terminalreporter.write_line(
            f"{line} — {verdict}: over budget", red=True
        )
    else:
        terminalreporter.write_line(line, green=True)


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def machine2x2():
    return Machine.flat(2, 2)


@pytest.fixture
def machine3x3():
    return Machine.flat(3, 3)


@pytest.fixture
def machine2x2x2():
    return Machine.flat(2, 2, 2)
