"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro import Machine


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def machine2x2():
    return Machine.flat(2, 2)


@pytest.fixture
def machine3x3():
    return Machine.flat(3, 3)


@pytest.fixture
def machine2x2x2():
    return Machine.flat(2, 2, 2)
