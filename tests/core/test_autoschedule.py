"""Tests for automatic schedule + format selection (Section 9)."""


from repro import (
    Assignment,
    Machine,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.core.autoschedule import (
    auto_schedule,
    choose_distributed_vars,
    derive_formats,
)


def fresh_gemm(n=16):
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n))
    C = TensorVar("C", (n, n))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j])


class TestChoices:
    def test_prefers_output_vars(self):
        stmt = fresh_gemm()
        i, j = stmt.free_vars
        assert choose_distributed_vars(stmt, 2) == [i, j]

    def test_falls_back_to_reductions(self):
        stmt = fresh_gemm()
        i, j = stmt.free_vars
        (k,) = stmt.reduction_vars
        assert choose_distributed_vars(stmt, 3) == [i, j, k]

    def test_derive_formats_tiles_and_replicates(self):
        stmt = fresh_gemm()
        machine = Machine.flat(2, 2)
        dist = choose_distributed_vars(stmt, 2)
        formats = derive_formats(
            stmt, dist, machine, stmt.lhs.tensor.format.memory
        )
        assert formats["A"].notation() == "ab -> ab"
        # B(i, k): i is distributed dim 0, j (dim 1) doesn't index B.
        assert formats["B"].notation() == "ab -> a*"
        assert formats["C"].notation() == "ab -> *b"


class TestEndToEnd:
    def test_matmul_correct(self, rng):
        stmt = fresh_gemm()
        machine = Machine.flat(2, 2)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
            verify=True,
        )

    def test_matmul_zero_comm_with_derived_formats(self, rng):
        # The derived formats replicate B and C exactly where needed:
        # owner-computes with no communication.
        stmt = fresh_gemm()
        machine = Machine.flat(2, 2)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        res = kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        )
        assert res.trace.total_copy_bytes == 0

    def test_ttv_correct(self, rng):
        n = 12
        A = TensorVar("A", (n, n))
        B = TensorVar("B", (n, n, n))
        c = TensorVar("c", (n,))
        i, j, k = index_vars("i j k")
        stmt = Assignment(A[i, j], B[i, j, k] * c[k])
        machine = Machine.flat(2, 2)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        res = kern.execute(
            {"B": rng.random((n, n, n)), "c": rng.random(n)}, verify=True
        )
        # Matches the paper's hand schedule: no communication.
        assert res.trace.total_copy_bytes == 0

    def test_mttkrp_correct(self, rng):
        n, r = 12, 6
        A = TensorVar("A", (n, r))
        B = TensorVar("B", (n, n, n))
        C = TensorVar("C", (n, r))
        D = TensorVar("D", (n, r))
        i, j, k, l = index_vars("i j k l")
        stmt = Assignment(A[i, l], B[i, j, k] * C[j, l] * D[k, l])
        machine = Machine.flat(2, 2, 2)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        kern.execute(
            {
                "B": rng.random((n, n, n)),
                "C": rng.random((n, r)),
                "D": rng.random((n, r)),
            },
            verify=True,
        )

    def test_scalar_output(self, rng):
        n = 12
        a = TensorVar("a", ())
        B = TensorVar("B", (n, n))
        i, j = index_vars("i j")
        stmt = Assignment(a[()], B[i, j] * B[i, j])
        machine = Machine.flat(2, 2)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        kern.execute({"B": rng.random((n, n))}, verify=True)

    def test_describe(self):
        stmt = fresh_gemm()
        machine = Machine.flat(2, 2)
        result = auto_schedule(stmt, machine)
        text = result.describe()
        assert "format A" in text
        assert "distribute" in text
