"""Tests for the public Kernel API."""

import pytest

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    OutOfMemoryError,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.algorithms import johnson, summa
from repro.machine.cluster import Cluster, MemoryKind
from repro.sim.params import LASSEN


class TestExecute:
    def test_verify_passes(self, rng):
        kern = summa(Machine.flat(2, 2), 16)
        kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
            verify=True,
        )

    def test_verify_catches_divergence(self, rng, monkeypatch):
        kern = summa(Machine.flat(2, 2), 16)
        inputs = {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        kern.execute(inputs)
        # Corrupt the oracle path: executing with different inputs but
        # verifying against the originals must fail.
        import repro.core.kernel as kmod

        original = kmod.reference_einsum

        def bad_oracle(assignment, arrays):
            return original(assignment, arrays) + 1.0

        monkeypatch.setattr(kmod, "reference_einsum", bad_oracle)
        with pytest.raises(AssertionError):
            kern.execute(inputs, verify=True)

    def test_outputs_returned(self, rng):
        kern = summa(Machine.flat(2, 2), 16)
        res = kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        )
        assert res.outputs["A"].shape == (16, 16)


class TestSimulate:
    def test_report_fields(self):
        kern = summa(Machine.flat(2, 2), 512)
        rep = kern.simulate(LASSEN)
        assert rep.total_time > 0
        assert rep.total_flops == 2 * 512 ** 3
        assert rep.num_nodes == 4
        assert rep.gflops_per_node > 0

    def test_oom_raised_when_checked(self):
        # A GPU cluster with tiny framebuffers cannot hold the tiles.
        cl = Cluster.gpu_cluster(2, framebuffer_gib=1, reserved_gib=0.99)
        m = Machine(cl, Grid(4, 2))
        kern = summa(m, 8192, memory=MemoryKind.GPU_FB)
        with pytest.raises(OutOfMemoryError):
            kern.simulate(LASSEN)
        # And not raised when unchecked.
        kern.simulate(LASSEN, check_capacity=False)

    def test_johnson_uses_more_memory_than_summa(self):
        n = 4096
        m3 = Machine.flat(2, 2, 2)
        m2 = Machine.flat(4, 2)
        hw_j = max(
            johnson(m3, n).trace(False).memory_high_water.values()
        )
        hw_s = max(
            summa(m2, n).trace(False).memory_high_water.values()
        )
        assert hw_j > hw_s


class TestPretty:
    def test_contains_statement(self):
        kern = summa(Machine.flat(2, 2), 16)
        assert "B(i, k) * C(k, j)" in kern.pretty()


class TestPrecomputeEndToEnd:
    def test_precompute_workspace(self, rng):
        # A(i) = (b(i) * c(i)) computed through a workspace.
        n = 12
        f = Format("x -> x")
        A = TensorVar("A", (n,), f)
        b = TensorVar("b", (n,), f)
        c = TensorVar("c", (n,), f)
        w = TensorVar("w", (n,))
        i, = index_vars("i")
        io, ii = index_vars("io ii")
        sub = b[i] * c[i]
        stmt = Assignment(A[i], sub)
        sched = (
            Schedule(stmt)
            .precompute(sub, w, [i])
            .distribute([i], [io], [ii], Grid(3))
        )
        kern = compile_kernel(sched, Machine.flat(3))
        res = kern.execute(
            {"b": rng.random(n), "c": rng.random(n)}, verify=True
        )
        assert res.outputs["A"].shape == (n,)
