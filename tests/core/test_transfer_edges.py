"""Redistribution-planner edge cases: regrids, replicas, degeneracy.

The replanner leans on ``redistribution_trace`` for exactly these
shapes — shrinking onto fewer nodes with replicated sources (failure
recovery), growing onto more nodes than there are source pieces
(regrid-up), and the one-node destination degenerate case — so each is
pinned here independently of the fault machinery.
"""

import pytest

from repro import Format, Grid, Machine, TensorVar
from repro.core.transfer import redistribution_trace
from repro.machine.cluster import Cluster


@pytest.fixture
def cluster():
    return Cluster.cpu_cluster(8, sockets_per_node=1)


def trace_for(cluster, src_fmt, src_grid, dst_fmt, dst_grid, **kw):
    T = TensorVar("T", (256, 256))
    src_m = Machine(cluster, Grid(*src_grid))
    dst_m = Machine(cluster, Grid(*dst_grid))
    return T, redistribution_trace(
        T, Format(src_fmt), src_m, Format(dst_fmt), dst_m, **kw
    )


class TestShrinkWithReplicas:
    def test_shrink_moves_at_most_one_copy(self, cluster):
        """(4,2) -> (3,2): replicated source rows mean every destination
        piece has several holders; the plan still ships each piece
        once."""
        T, trace = trace_for(
            cluster, "ab -> a*", (4, 2), "ab -> ab", (3, 2)
        )
        assert 0 < trace.total_copy_bytes <= T.nbytes

    def test_avoided_node_never_sources_replicated_pieces(self, cluster):
        """With replicas available, excluding a source node redirects
        every copy it would have served to a surviving holder."""
        T, trace = trace_for(
            cluster, "ab -> a*", (4, 2), "ab -> ab", (7, 1),
            avoid_src_nodes={7},
        )
        assert trace.total_copy_bytes > 0
        for step in trace.steps:
            for copy in step.copies:
                assert copy.src_proc.node_id != 7

    def test_avoidance_changes_sources_not_bytes(self, cluster):
        T, plain = trace_for(
            cluster, "ab -> a*", (4, 2), "ab -> ab", (7, 1)
        )
        T, avoided = trace_for(
            cluster, "ab -> a*", (4, 2), "ab -> ab", (7, 1),
            avoid_src_nodes={7},
        )
        assert avoided.total_copy_bytes == plain.total_copy_bytes

    def test_unreplicated_pieces_still_leave_the_avoided_node(
        self, cluster
    ):
        """Without replicas there is no surviving holder to redirect to:
        the planner keeps the dead node as the source (the replanner
        reads these as checkpoint restores) rather than dropping the
        piece silently."""
        T, trace = trace_for(
            cluster, "ab -> ab", (4, 2), "ab -> ab", (7, 1),
            avoid_src_nodes={7},
        )
        dead_sourced = [
            copy
            for step in trace.steps
            for copy in step.copies
            if copy.src_proc.node_id == 7
        ]
        assert dead_sourced  # node 7 held unreplicated pieces


class TestGrowRegrid:
    def test_more_destination_nodes_than_source_pieces(self, cluster):
        """(2,) -> (8,): two coarse source pieces fan out to eight
        owners. Only node 0's destination piece is already resident on
        its source holder (node 1's new piece lives inside *node 0's*
        source half), so seven of the eight pieces move."""
        T, trace = trace_for(cluster, "ab -> a", (2,), "ab -> a", (8,))
        assert trace.total_copy_bytes == pytest.approx(
            T.nbytes * 7 / 8
        )
        sources = {
            copy.src_proc.node_id
            for step in trace.steps
            for copy in step.copies
        }
        assert sources <= {0, 1}

    def test_grow_into_replicated_destination(self, cluster):
        """Growing into a replicated layout charges the full fan-out:
        every new holder that lacks the data receives it."""
        T, trace = trace_for(cluster, "ab -> a", (2,), "ab -> *", (8,))
        # Nodes 0 and 1 each hold half; each of the 8 holders needs the
        # full tensor, so each misses at least the other half.
        assert trace.total_copy_bytes >= T.nbytes


class TestDegenerateDestination:
    def test_single_node_destination_funnels_everything(self, cluster):
        T, trace = trace_for(cluster, "ab -> ab", (4, 2), "ab -> a", (1,))
        # Node 0 already holds a quarter-row block; the rest arrives.
        assert trace.total_copy_bytes == pytest.approx(
            T.nbytes * 7 / 8
        )
        for step in trace.steps:
            for copy in step.copies:
                assert copy.dst_proc.node_id == 0

    def test_single_source_single_destination_is_free(self, cluster):
        T, trace = trace_for(cluster, "ab -> a", (1,), "ab -> b", (1,))
        assert trace.total_copy_bytes == 0

    def test_single_node_roundtrip_is_symmetric(self, cluster):
        T, shrink = trace_for(cluster, "ab -> ab", (2, 4), "ab -> a", (1,))
        T, grow = trace_for(cluster, "ab -> a", (1,), "ab -> ab", (2, 4))
        assert shrink.total_copy_bytes == grow.total_copy_bytes
