"""The serving chaos model: seeded plans, controller injection points.

Mirrors ``tests/faults/test_events.py`` for :class:`ChaosPlan` — the
plan must be deterministic per seed with a stable ``encode()`` — and
pins the :class:`ChaosController` consult semantics the daemon and
client rely on (one counter per injection point, fire-once events,
poison overriding positional kills).
"""

import pytest

from repro.faults.chaos import (
    ChaosController,
    ChaosPlan,
    DropConnection,
    KillWorker,
    OversizedLine,
    PoisonRequest,
    RestartDaemon,
    TornLine,
)


class TestPlan:
    def test_equal_seeds_sample_byte_identical_plans(self):
        a = ChaosPlan.sample(11, operations=20, dispatches=6)
        b = ChaosPlan.sample(11, operations=20, dispatches=6)
        assert a == b
        assert a.encode() == b.encode()

    def test_different_seeds_differ(self):
        encodings = {
            ChaosPlan.sample(seed, operations=50, dispatches=20).encode()
            for seed in range(8)
        }
        assert len(encodings) > 1

    def test_encode_is_stable_and_readable(self):
        plan = ChaosPlan(
            events=(
                KillWorker(dispatch=3),
                DropConnection(reply=1),
                TornLine(send=2),
                OversizedLine(send=4, size=8192),
                RestartDaemon(after=5),
                PoisonRequest(fingerprint="abcd1234"),
            ),
            seed=7,
        )
        assert plan.encode() == (
            "seed=7;kill-worker(dispatch=3);drop(reply=1);torn(send=2);"
            "oversized(send=4,size=8192);restart(after=5);"
            "poison(fingerprint=abcd1234)"
        )

    def test_hand_built_plan_has_no_seed_prefix(self):
        plan = ChaosPlan(events=(KillWorker(dispatch=0),))
        assert plan.encode() == "kill-worker(dispatch=0)"

    def test_sampled_event_counts_and_ranges(self):
        plan = ChaosPlan.sample(
            3, operations=10, dispatches=4, kills=2, drops=3, torn=1,
            oversized=1, restart=True,
        )
        kills = [e for e in plan.events if isinstance(e, KillWorker)]
        drops = [e for e in plan.events if isinstance(e, DropConnection)]
        torn = [e for e in plan.events if isinstance(e, TornLine)]
        oversized = [
            e for e in plan.events if isinstance(e, OversizedLine)
        ]
        assert len(kills) == 2 and all(
            0 <= e.dispatch < 4 for e in kills
        )
        assert len(drops) == 3 and all(0 <= e.reply < 10 for e in drops)
        assert len(torn) == 1 and len(oversized) == 1
        # The restart lands mid-stream, never at the edges.
        assert 10 // 3 <= plan.restart_after() < 10

    def test_restart_can_be_disabled(self):
        plan = ChaosPlan.sample(
            3, operations=10, dispatches=4, restart=False
        )
        assert plan.restart_after() is None

    def test_with_events_extends_preserving_seed(self):
        base = ChaosPlan.sample(5, operations=4, dispatches=2)
        extended = base.with_events(PoisonRequest(fingerprint="ff00"))
        assert extended.seed == 5
        assert extended.events[:-1] == base.events
        assert extended.events[-1] == PoisonRequest(fingerprint="ff00")

    def test_sample_rejects_empty_ranges(self):
        with pytest.raises(ValueError):
            ChaosPlan.sample(1, operations=0, dispatches=4)
        with pytest.raises(ValueError):
            ChaosPlan.sample(1, operations=4, dispatches=0)


class TestController:
    def test_kill_fires_at_its_dispatch_index_once(self):
        controller = ChaosController(
            ChaosPlan(events=(KillWorker(dispatch=1),))
        )
        assert not controller.kill_worker("aa")   # dispatch 0
        assert controller.kill_worker("aa")       # dispatch 1
        assert not controller.kill_worker("aa")   # dispatch 2
        assert controller.kills_fired == 1

    def test_poison_fires_every_dispatch_regardless_of_index(self):
        controller = ChaosController(
            ChaosPlan(events=(PoisonRequest(fingerprint="bad"),))
        )
        assert all(controller.kill_worker("bad") for _ in range(4))
        assert not controller.kill_worker("good")
        assert controller.poison_fired == 4
        assert controller.kills_fired == 0

    def test_drop_fires_at_its_reply_index(self):
        controller = ChaosController(
            ChaosPlan(events=(DropConnection(reply=0),))
        )
        assert controller.drop_before_reply()
        assert not controller.drop_before_reply()
        assert controller.drops_fired == 1

    def test_torn_fires_at_its_send_index(self):
        controller = ChaosController(
            ChaosPlan(events=(TornLine(send=2),))
        )
        fired = [controller.torn_send() for _ in range(4)]
        assert fired == [False, False, True, False]
        assert controller.torn_fired == 1

    def test_oversized_peeks_the_send_counter_and_fires_once(self):
        controller = ChaosController(
            ChaosPlan(events=(OversizedLine(send=1, size=999),))
        )
        # The client consults torn_send() (advancing the counter) and
        # then oversized_send() for the same request frame.
        assert not controller.torn_send()           # send 0
        assert controller.oversized_send() is None
        assert not controller.torn_send()           # send 1
        assert controller.oversized_send() == 999
        assert not controller.torn_send()           # send 2
        assert controller.oversized_send() is None  # fired already
        assert controller.oversized_fired == 1

    def test_torn_send_suppresses_oversized_at_the_same_index(self):
        controller = ChaosController(
            ChaosPlan(
                events=(TornLine(send=0), OversizedLine(send=0))
            )
        )
        assert controller.torn_send()
        assert controller.oversized_send() is None
