"""The fault event model: plans, sampling, and lost instances."""

import pytest

from repro import Grid, Machine, compile_kernel
from repro.faults.events import (
    FaultPlan,
    KillNode,
    Resize,
    lost_instances,
)
from repro.tuner.space import from_heuristic, realize
from repro.tuner.workloads import lean_cluster, matmul


class TestFaultPlan:
    def test_encode_is_stable(self):
        plan = FaultPlan(
            events=(
                KillNode(phase=2, node=1, stage="T"),
                Resize(boundary="D", nodes=3),
            ),
            seed=7,
        )
        assert plan.encode() == (
            "seed=7;kill(node=1,phase=2@T);resize(before=D,nodes=3)"
        )

    def test_kill_for_scoping(self):
        unscoped = KillNode(phase=1, node=0)
        scoped = KillNode(phase=2, node=1, stage="T")
        plan = FaultPlan(events=(scoped, unscoped))
        assert plan.kill_for("T") is scoped
        assert plan.kill_for(None) is unscoped
        assert plan.kill_for("D") is None

    def test_resize_before(self):
        resize = Resize(boundary="D", nodes=2)
        plan = FaultPlan(events=(resize,))
        assert plan.resize_before("D") is resize
        assert plan.resize_before("T") is None

    def test_sample_is_deterministic(self):
        a = FaultPlan.sample(11, 8, max_phase=4)
        b = FaultPlan.sample(11, 8, max_phase=4)
        assert a == b
        assert a.encode() == b.encode()

    def test_sample_respects_bounds(self):
        for seed in range(20):
            plan = FaultPlan.sample(seed, 6, max_phase=3)
            kill = plan.kill_for(None)
            assert 1 <= kill.phase <= 3
            assert 0 <= kill.node < 6

    def test_sample_varies_with_seed(self):
        plans = {
            FaultPlan.sample(seed, 16, max_phase=8).encode()
            for seed in range(16)
        }
        assert len(plans) > 1

    def test_sample_needs_two_nodes(self):
        with pytest.raises(ValueError):
            FaultPlan.sample(0, 1, max_phase=2)

    def test_sample_pipeline_resizes(self):
        plan = FaultPlan.sample(
            3, 4, max_phase=2, stages=("T", "D"), resize_choices=(2, 3)
        )
        kill = plan.kill_for("T") or plan.kill_for("D")
        assert kill is not None
        for event in plan.events:
            if isinstance(event, Resize):
                assert event.boundary == "D"
                assert event.nodes in (2, 3)


class TestLostInstances:
    @pytest.fixture
    def kernel(self):
        cluster = lean_cluster(4)
        assignment = matmul(64)
        decision = from_heuristic(assignment, (2, 2))
        machine = Machine(cluster, Grid(*decision.grid))
        schedule, _ = realize(assignment, machine, decision)
        return compile_kernel(schedule, machine)

    def test_every_node_loses_something(self, kernel):
        machine = kernel.machine
        for node in range(machine.cluster.num_nodes):
            lost = lost_instances(kernel.plan, machine, node)
            assert lost, f"node {node} held nothing"
            for name, coords, rect in lost:
                assert machine.proc_at(coords).node_id == node
                assert not rect.is_empty

    def test_sorted_and_deterministic(self, kernel):
        machine = kernel.machine
        a = lost_instances(kernel.plan, machine, 1)
        b = lost_instances(kernel.plan, machine, 1)
        assert a == b
        assert list(a) == sorted(a, key=lambda item: (item[0], item[1]))

    def test_all_nodes_cover_all_instances(self, kernel):
        """Every placed instance is home to exactly one node."""
        machine = kernel.machine
        per_node = [
            lost_instances(kernel.plan, machine, node)
            for node in range(machine.cluster.num_nodes)
        ]
        seen = [
            (name, coords)
            for chunk in per_node
            for name, coords, _rect in chunk
        ]
        assert len(seen) == len(set(seen))
