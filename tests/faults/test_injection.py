"""Fault injection through the executors.

Both symbolic interpreters (batched and orbit-compressed) create every
bulk-synchronous phase through ``Trace.new_step``, so a planned kill
must interrupt either one at exactly the same boundary with the same
structured :class:`NodeFailure` payload.
"""

import pytest

from repro import Grid, Machine, compile_kernel
from repro.faults.events import FaultPlan, KillNode
from repro.tuner.space import from_heuristic, realize
from repro.tuner.workloads import lean_cluster, matmul, ttv
from repro.util.errors import NodeFailure


def build_kernel(assignment, cluster, grid):
    decision = from_heuristic(assignment, grid)
    machine = Machine(cluster, Grid(*decision.grid))
    schedule, _ = realize(assignment, machine, decision)
    return compile_kernel(schedule, machine)


@pytest.fixture
def kernel():
    return build_kernel(matmul(64), lean_cluster(4), (2, 2))


class TestInjection:
    @pytest.mark.parametrize("mode", ["batched", "orbit"])
    def test_kill_raises_structured_failure(self, kernel, mode):
        plan = FaultPlan(events=(KillNode(phase=1, node=2),))
        with pytest.raises(NodeFailure) as exc:
            kernel.trace(mode=mode, fault_plan=plan)
        failure = exc.value
        assert failure.phase == 1
        assert failure.node == 2
        assert failure.surviving_nodes == 3
        assert failure.lost
        assert len(failure.partial_trace.steps) == 1

    def test_batched_and_orbit_fail_identically(self, kernel):
        plan = FaultPlan(events=(KillNode(phase=1, node=1),))
        failures = {}
        for mode in ("batched", "orbit"):
            with pytest.raises(NodeFailure) as exc:
                kernel.trace(mode=mode, fault_plan=plan)
            failures[mode] = exc.value
        a, b = failures["batched"], failures["orbit"]
        assert a.phase == b.phase
        assert a.node == b.node
        assert a.surviving_nodes == b.surviving_nodes
        assert a.lost == b.lost
        assert len(a.partial_trace.steps) == len(b.partial_trace.steps)

    def test_kill_at_phase_zero_loses_nothing_completed(self, kernel):
        plan = FaultPlan(events=(KillNode(phase=0, node=0),))
        with pytest.raises(NodeFailure) as exc:
            kernel.trace(fault_plan=plan)
        assert exc.value.partial_trace.steps == []

    def test_kill_past_the_end_never_fires(self, kernel):
        steps = len(kernel.trace().trace.steps)
        plan = FaultPlan(events=(KillNode(phase=steps + 5, node=0),))
        result = kernel.trace(fault_plan=plan)  # completes
        assert len(result.trace.steps) == steps

    def test_plan_without_kill_is_inert(self, kernel):
        reference = kernel.trace()
        run = kernel.trace(fault_plan=FaultPlan())
        assert len(run.trace.steps) == len(reference.trace.steps)

    def test_out_of_range_node_rejected(self, kernel):
        plan = FaultPlan(events=(KillNode(phase=1, node=99),))
        with pytest.raises(ValueError):
            kernel.trace(fault_plan=plan)

    def test_simulate_also_injects(self, kernel):
        plan = FaultPlan(events=(KillNode(phase=1, node=0),))
        with pytest.raises(NodeFailure):
            kernel.simulate(fault_plan=plan)

    def test_other_workload_shapes(self):
        kernel = build_kernel(ttv(48), lean_cluster(4), (2, 2))
        plan = FaultPlan(events=(KillNode(phase=1, node=3),))
        with pytest.raises(NodeFailure) as exc:
            kernel.trace(fault_plan=plan)
        assert exc.value.node == 3
        assert all(
            kernel.machine.proc_at(coords).node_id == 3
            for _name, coords, _rect in exc.value.lost
        )
