"""The expected-cost tuning objective and checkpoint placement."""

import math

import pytest

from repro.faults.objective import (
    checkpoint_choices,
    expected_cost,
    expected_for,
    input_bytes,
    rerank_expected,
    tensor_bytes,
)
from repro.sim.params import LASSEN
from repro.tuner.oracle import INFEASIBLE, EvalOutcome
from repro.tuner.search import tune
from repro.tuner.space import from_heuristic
from repro.tuner.workloads import lean_cluster, matmul


@pytest.fixture
def assignment():
    return matmul(64)


class TestExpectedCost:
    def test_zero_rate_is_the_base_cost(self):
        assert expected_cost(2.0, 8, 0.0, 0, 10 ** 9, 4, LASSEN) == 2.0

    def test_rate_monotonic(self):
        costs = [
            expected_cost(2.0, 8, rate, 0, 10 ** 9, 4, LASSEN)
            for rate in (0.0, 1e-4, 1e-2, 0.5)
        ]
        assert costs == sorted(costs)
        assert costs[-1] > costs[0]

    def test_checkpoint_charges_per_phase_overhead(self):
        plain = expected_cost(2.0, 8, 0.0, 0, 10 ** 9, 4, LASSEN)
        ckpt = expected_cost(2.0, 8, 0.0, 10 ** 9, 10 ** 9, 4, LASSEN)
        assert ckpt > plain

    def test_checkpoint_wins_at_high_rates(self):
        # Failures near-certain: losing half the run dominates the
        # per-phase write cost of a small snapshot.
        plain = expected_cost(10.0, 16, 0.2, 0, 10 ** 9, 4, LASSEN)
        ckpt = expected_cost(10.0, 16, 0.2, 10 ** 7, 10 ** 7, 4, LASSEN)
        assert ckpt < plain

    def test_infeasible_passes_through(self):
        assert expected_cost(
            math.inf, 4, 0.5, 0, 10 ** 9, 4, LASSEN
        ) == math.inf

    def test_rate_clamped(self):
        high = expected_cost(1.0, 4, 2.0, 0, 0, 4, LASSEN)
        one = expected_cost(1.0, 4, 1.0, 0, 0, 4, LASSEN)
        assert high == one


class TestBytesHelpers:
    def test_tensor_and_input_bytes(self, assignment):
        names = {t.name: t.nbytes for t in assignment.tensors()}
        out = assignment.lhs.tensor.name
        assert tensor_bytes(assignment, [out]) == names[out]
        assert input_bytes(assignment) == sum(
            nbytes for name, nbytes in names.items() if name != out
        )

    def test_checkpoint_choices(self, assignment):
        choices = checkpoint_choices(assignment)
        assert choices == [(), (assignment.lhs.tensor.name,)]


class TestRerankExpected:
    def outcome(self, assignment, cost=1.0, steps=4):
        decision = from_heuristic(assignment, (2, 2))
        return EvalOutcome(decision=decision, cost=cost, num_steps=steps)

    def test_expands_feasible_outcomes(self, assignment):
        ranked = rerank_expected(
            [self.outcome(assignment)], assignment,
            params=LASSEN, num_nodes=4, failure_rate=0.01,
        )
        assert len(ranked) == 2
        checkpoints = {o.decision.checkpoint for o in ranked}
        assert checkpoints == {(), (assignment.lhs.tensor.name,)}

    def test_zero_rate_prefers_plain(self, assignment):
        ranked = rerank_expected(
            [self.outcome(assignment)], assignment,
            params=LASSEN, num_nodes=4, failure_rate=0.0,
        )
        assert ranked[0].decision.checkpoint == ()
        assert ranked[0].cost == pytest.approx(1.0)

    def test_high_rate_prefers_checkpoint(self, assignment):
        ranked = rerank_expected(
            [self.outcome(assignment, cost=50.0, steps=16)], assignment,
            params=LASSEN, num_nodes=4, failure_rate=0.05,
        )
        assert ranked[0].decision.checkpoint != ()

    def test_infeasible_not_expanded(self, assignment):
        bad = EvalOutcome(
            decision=from_heuristic(assignment, (2, 2)),
            cost=INFEASIBLE,
        )
        ranked = rerank_expected(
            [bad], assignment,
            params=LASSEN, num_nodes=4, failure_rate=0.1,
        )
        assert len(ranked) == 1
        assert not ranked[0].feasible

    def test_matches_expected_for(self, assignment):
        outcome = self.outcome(assignment, cost=3.0, steps=8)
        ranked = rerank_expected(
            [outcome], assignment,
            params=LASSEN, num_nodes=4, failure_rate=0.02,
        )
        for expanded in ranked:
            assert expanded.cost == pytest.approx(expected_for(
                outcome, assignment, expanded.decision.checkpoint,
                0.02, 4, LASSEN,
            ))


class TestTuneObjective:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            tune(
                matmul(64), lean_cluster(4), LASSEN,
                objective="optimistic",
            )

    def test_expected_objective_end_to_end(self):
        result = tune(
            matmul(64), lean_cluster(4), LASSEN,
            strategy="exhaustive", objective="expected",
            failure_rate=0.2,
        )
        assert result.search.best.feasible
        # The winning decision realizes and simulates like any other
        # (checkpoint placement never alters the schedule itself).
        assert result.report.total_time > 0

    def test_zero_rate_reduces_to_total_objective(self):
        plain = tune(
            matmul(64), lean_cluster(4), LASSEN, strategy="exhaustive"
        )
        expected = tune(
            matmul(64), lean_cluster(4), LASSEN,
            strategy="exhaustive", objective="expected", failure_rate=0.0,
        )
        assert expected.search.best.decision.checkpoint == ()
        assert expected.search.best.cost == pytest.approx(
            plain.search.best.cost
        )
