"""Pipeline replanning: mid-stage kills and inter-stage regrids."""

import math

import pytest

from repro.faults.events import FaultPlan, KillNode, Resize
from repro.faults.replan import replan_pipeline
from repro.pipeline import Pipeline
from repro.sim.params import LASSEN
from repro.tuner.space import Decision, from_heuristic
from repro.tuner.workloads import lean_cluster, matmul_chain


@pytest.fixture
def setup():
    cluster = lean_cluster(4)
    pipeline = Pipeline(matmul_chain(64), cluster)
    decisions = {
        stage.name: from_heuristic(stage.assignment, (2, 2))
        for stage in pipeline.stages
    }
    return pipeline, decisions


def replan(pipeline, decisions, plan, **kw):
    kw.setdefault("strategy", "exhaustive")
    return replan_pipeline(
        pipeline, decisions, LASSEN, fault_plan=plan, seed=0, **kw
    )


class TestKillMidPipeline:
    def test_kill_shrinks_downstream_stages(self, setup):
        pipeline, decisions = setup
        plan = FaultPlan(
            events=(KillNode(phase=1, node=1, stage="T"),), seed=3
        )
        report = replan(pipeline, decisions, plan)
        by_name = {s.stage: s for s in report.stages}
        assert by_name["T"].recovery is not None
        assert by_name["T"].recovery.failed
        # The killed stage and everything after it run on 3 nodes.
        assert by_name["T"].nodes == 3
        assert by_name["D"].nodes == 3
        assert by_name["D"].retuned
        retuned = Decision.decode(by_name["D"].decision)
        assert math.prod(retuned.grid) == 3 * pipeline.cluster.procs_per_node
        assert math.isfinite(report.total_time)
        assert report.total_time > report.baseline_time

    def test_kill_in_last_stage_leaves_earlier_stages_alone(self, setup):
        pipeline, decisions = setup
        plan = FaultPlan(
            events=(KillNode(phase=1, node=0, stage="D"),), seed=1
        )
        report = replan(pipeline, decisions, plan)
        by_name = {s.stage: s for s in report.stages}
        assert by_name["T"].nodes == 4
        assert not by_name["T"].retuned
        assert by_name["D"].recovery.failed

    def test_equal_plans_byte_identical(self, setup):
        pipeline, decisions = setup
        plan = FaultPlan(
            events=(KillNode(phase=1, node=2, stage="T"),), seed=8
        )
        a = replan(pipeline, decisions, plan)
        b = replan(pipeline, decisions, plan)
        assert a.to_json() == b.to_json()


class TestResizeBetweenStages:
    @pytest.mark.parametrize("nodes", [2, 8])
    def test_resize_retunes_the_boundary_stage(self, setup, nodes):
        """Shrinking and growing the grid both re-tune stage D onto the
        new machine and pay a cross-grid handoff for T."""
        pipeline, decisions = setup
        plan = FaultPlan(events=(Resize(boundary="D", nodes=nodes),))
        report = replan(pipeline, decisions, plan)
        by_name = {s.stage: s for s in report.stages}
        assert by_name["T"].nodes == 4
        assert by_name["D"].nodes == nodes
        assert by_name["D"].retuned
        retuned = Decision.decode(by_name["D"].decision)
        assert math.prod(retuned.grid) == (
            nodes * pipeline.cluster.procs_per_node
        )
        assert by_name["D"].handoff_bytes > 0
        assert math.isfinite(report.total_time)

    def test_noop_resize_changes_nothing(self, setup):
        pipeline, decisions = setup
        plan = FaultPlan(events=(Resize(boundary="D", nodes=4),))
        report = replan(pipeline, decisions, plan)
        assert not any(s.retuned for s in report.stages)


class TestQuietPlan:
    def test_empty_plan_runs_clean(self, setup):
        pipeline, decisions = setup
        report = replan(pipeline, decisions, FaultPlan())
        assert all(s.recovery is None for s in report.stages)
        assert not any(s.retuned for s in report.stages)
        assert math.isfinite(report.total_time)
        assert report.baseline_time > 0

    def test_describe_lists_every_stage(self, setup):
        pipeline, decisions = setup
        plan = FaultPlan(
            events=(KillNode(phase=1, node=1, stage="T"),), seed=2
        )
        text = replan(pipeline, decisions, plan).describe()
        assert "stage T" in text
        assert "stage D" in text
        assert "died at phase" in text
