"""Kernel-level failure replanning."""

import math
from dataclasses import replace

import pytest

from repro.faults.events import FaultPlan, KillNode
from repro.faults.replan import replan_kernel, sized_cluster
from repro.sim.params import LASSEN
from repro.tuner.space import Decision, from_heuristic
from repro.tuner.workloads import lean_cluster, matmul


@pytest.fixture
def setup():
    cluster = lean_cluster(4)
    assignment = matmul(64)
    decision = from_heuristic(assignment, (2, 2))
    return assignment, cluster, decision


def replan(assignment, cluster, decision, plan, **kw):
    kw.setdefault("strategy", "exhaustive")
    return replan_kernel(
        assignment, cluster, LASSEN,
        decision=decision, fault_plan=plan, seed=0, **kw,
    )


class TestSizedCluster:
    def test_shrink_and_grow_keep_anatomy(self):
        cluster = lean_cluster(4)
        for nodes in (1, 3, 8):
            resized = sized_cluster(cluster, nodes)
            assert resized.num_nodes == nodes
            assert resized.procs_per_node == cluster.procs_per_node
            assert resized.processor_kind is cluster.processor_kind

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            sized_cluster(lean_cluster(4), 0)


class TestReplanKernel:
    def test_accounting_identity(self, setup):
        assignment, cluster, decision = setup
        plan = FaultPlan(events=(KillNode(phase=1, node=2),), seed=5)
        report = replan(assignment, cluster, decision, plan)
        assert report.failed
        assert report.num_nodes == 4
        assert report.surviving_nodes == 3
        assert report.lost_instances > 0
        # No checkpoint: the completed prefix is wasted but still paid.
        assert report.lost_time == report.completed_time
        assert report.total_time == pytest.approx(
            report.completed_time
            + report.migration_time
            + report.retuned_time
        )
        assert math.isfinite(report.total_time)
        assert report.total_time >= report.baseline_time

    def test_retuned_decision_fits_surviving_machine(self, setup):
        assignment, cluster, decision = setup
        plan = FaultPlan(events=(KillNode(phase=1, node=0),), seed=1)
        report = replan(assignment, cluster, decision, plan)
        retuned = Decision.decode(report.retuned_decision)
        assert math.prod(retuned.grid) == 3 * cluster.procs_per_node

    def test_checkpoint_preserves_completed_prefix(self, setup):
        assignment, cluster, decision = setup
        ckpt = replace(
            decision, checkpoint=(assignment.lhs.tensor.name,)
        )
        plan = FaultPlan(events=(KillNode(phase=1, node=2),), seed=5)
        plain = replan(assignment, cluster, decision, plan)
        saved = replan(assignment, cluster, ckpt, plan)
        assert saved.checkpointed == (assignment.lhs.tensor.name,)
        assert saved.lost_time == 0.0
        # Only the remaining fraction of phases re-runs.
        assert saved.retuned_time < plain.retuned_time
        # The snapshot itself migrates too.
        assert saved.migration_bytes > plain.migration_bytes

    def test_kill_past_end_reports_no_failure(self, setup):
        assignment, cluster, decision = setup
        plan = FaultPlan(events=(KillNode(phase=99, node=1),))
        report = replan(assignment, cluster, decision, plan)
        assert not report.failed
        assert report.phase == -1
        assert report.total_time == report.baseline_time
        assert report.migration_bytes == 0
        assert report.retuned_decision == report.pre_decision

    def test_equal_seeds_byte_identical(self, setup):
        assignment, cluster, decision = setup
        plan = FaultPlan(events=(KillNode(phase=1, node=3),), seed=9)
        a = replan(assignment, cluster, decision, plan)
        b = replan(assignment, cluster, decision, plan)
        assert a.to_json() == b.to_json()

    def test_different_kills_differ(self, setup):
        assignment, cluster, decision = setup
        a = replan(
            assignment, cluster, decision,
            FaultPlan(events=(KillNode(phase=1, node=0),)),
        )
        b = replan(
            assignment, cluster, decision,
            FaultPlan(events=(KillNode(phase=0, node=0),)),
        )
        assert a.phase != b.phase

    def test_describe_mentions_the_event(self, setup):
        assignment, cluster, decision = setup
        plan = FaultPlan(events=(KillNode(phase=1, node=2),))
        report = replan(assignment, cluster, decision, plan)
        text = report.describe()
        assert "node 2 died at phase 1" in text
        assert "re-tuned remainder" in text
