"""Tensor distribution notation tests, including all of Figure 5.

Each of the paper's six example distributions (Figure 5) is a direct
test case, plus the formal P/F semantics of the running 2x2x2 example
from Section 3.2.
"""

import pytest

from repro.formats.distribution import (
    Broadcast,
    DimName,
    Distribution,
    Fixed,
    block_index,
)
from repro.util.errors import DistributionError
from repro.util.geometry import Interval, Rect


def owned(notation, coords, tensor_shape, machine_shape):
    dist = Distribution.parse(notation)
    return dist.owned_rect(coords, Rect.full(tensor_shape), machine_shape)


class TestParsing:
    def test_parse_simple(self):
        d = Distribution.parse("xy -> xy")
        assert d.tensor_dims == ("x", "y")
        assert d.machine_dims == (DimName("x"), DimName("y"))

    def test_parse_fixed_and_broadcast(self):
        d = Distribution.parse("xy -> xy0*")
        assert d.machine_dims == (
            DimName("x"),
            DimName("y"),
            Fixed(0),
            Broadcast(),
        )

    def test_roundtrip(self):
        for s in ["x -> x", "xy -> x", "xy -> xy0", "xy -> xy*", "xyz -> xy"]:
            assert Distribution.parse(s).notation() == s

    def test_parse_rejects_garbage(self):
        with pytest.raises(DistributionError):
            Distribution.parse("xy")
        with pytest.raises(DistributionError):
            Distribution.parse("xy -> x?")

    def test_machine_dims_check(self):
        with pytest.raises(DistributionError):
            Distribution.parse("xy -> xy", machine_dims=3)


class TestValidity:
    """The validity rules of Section 3.2."""

    def test_duplicate_tensor_names(self):
        with pytest.raises(DistributionError):
            Distribution.parse("xx -> x")

    def test_duplicate_machine_names(self):
        with pytest.raises(DistributionError):
            Distribution.parse("xy -> xx")

    def test_machine_name_must_be_tensor_name(self):
        with pytest.raises(DistributionError):
            Distribution.parse("xy -> xz")

    def test_fixed_out_of_range(self):
        d = Distribution.parse("xy -> xy3")
        with pytest.raises(DistributionError):
            d.check_machine((2, 2, 2))

    def test_ok_case(self):
        Distribution.parse("xy -> xy0").check_machine((2, 2, 2))


class TestFigure5:
    """The six distribution examples of Figure 5."""

    def test_5a_blocked_vector(self):
        # T x->x M: 100 components over 10 processors: 10 each.
        for p in range(10):
            rect = owned("x -> x", (p,), (100,), (10,))
            assert rect == Rect.of(Interval(10 * p, 10 * p + 10))

    def test_5b_row_wise_matrix(self):
        # T xy->x M: row blocks; columns span their full extent.
        rect = owned("xy -> x", (1,), (6, 4), (3,))
        assert rect == Rect.of(Interval(2, 4), Interval(0, 4))

    def test_5c_tiled_matrix(self):
        rect = owned("xy -> xy", (1, 0), (4, 4), (2, 2))
        assert rect == Rect.of(Interval(2, 4), Interval(0, 2))

    def test_5d_fixed_face(self):
        # T xy->xy0 M: tiles live only on the z=0 face.
        on_face = owned("xy -> xy0", (1, 1, 0), (4, 4), (2, 2, 2))
        assert on_face == Rect.of(Interval(2, 4), Interval(2, 4))
        off_face = owned("xy -> xy0", (1, 1, 1), (4, 4), (2, 2, 2))
        assert off_face is None

    def test_5e_broadcast(self):
        # T xy->xy* M: every z coordinate holds a replica.
        for z in range(2):
            rect = owned("xy -> xy*", (0, 1, z), (4, 4), (2, 2, 2))
            assert rect == Rect.of(Interval(0, 2), Interval(2, 4))

    def test_5f_3_tensor_on_2d_machine(self):
        # T xyz->xy M: the last tensor dimension is unpartitioned.
        rect = owned("xyz -> xy", (1, 0), (4, 4, 4), (2, 2))
        assert rect == Rect.of(
            Interval(2, 4), Interval(0, 2), Interval(0, 4)
        )


class TestSemantics:
    """P and F of the running example: T xy->xy* M, T 2x2, M 2x2x2."""

    def setup_method(self):
        self.dist = Distribution.parse("xy -> xy*")
        self.tshape = (2, 2)
        self.mshape = (2, 2, 2)

    def test_coloring(self):
        for coord in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            color = self.dist.color_of(coord, self.tshape, self.mshape)
            assert color == coord

    def test_f_expands_broadcast(self):
        procs = list(
            self.dist.processors_of_color((0, 1), self.mshape)
        )
        assert procs == [(0, 1, 0), (0, 1, 1)]

    def test_replication_factor(self):
        assert self.dist.replication_factor(self.mshape) == 2
        tiled = Distribution.parse("xy -> xy")
        assert tiled.replication_factor((2, 2)) == 1

    def test_home_points_fixed(self):
        dist = Distribution.parse("xy -> xy0")
        points = list(dist.home_points((2, 2, 2)))
        assert all(p[2] == 0 for p in points)
        assert len(points) == 4


class TestOwnerQueries:
    def test_owners_covering_hit(self):
        dist = Distribution.parse("xy -> xy")
        needed = Rect.of(Interval(0, 2), Interval(2, 4))
        owners = dist.owners_covering(needed, Rect.full((4, 4)), (2, 2))
        assert owners == [(0, 1)]

    def test_owners_covering_straddles(self):
        dist = Distribution.parse("xy -> xy")
        needed = Rect.of(Interval(1, 3), Interval(0, 2))
        assert dist.owners_covering(needed, Rect.full((4, 4)), (2, 2)) == []

    def test_cover_pieces_decomposes(self):
        dist = Distribution.parse("xy -> xy")
        needed = Rect.of(Interval(1, 3), Interval(0, 2))
        pieces = dist.cover_pieces(needed, Rect.full((4, 4)), (2, 2))
        assert len(pieces) == 2
        total = sum(rect.volume for _, rect in pieces)
        assert total == needed.volume

    def test_broadcast_owner_is_free(self):
        dist = Distribution.parse("xy -> xy*")
        needed = Rect.of(Interval(0, 2), Interval(0, 2))
        owners = dist.owners_covering(needed, Rect.full((4, 4)), (2, 2, 3))
        assert owners == [(0, 0, None)]

    def test_ragged_blocks(self):
        # 10 rows over 3 processors: blocks of 4, 4, 2.
        dist = Distribution.parse("xy -> x")
        r0 = dist.owned_rect((0,), Rect.full((10, 2)), (3,))
        r2 = dist.owned_rect((2,), Rect.full((10, 2)), (3,))
        assert r0.intervals[0] == Interval(0, 4)
        assert r2.intervals[0] == Interval(8, 10)


class TestBlockIndex:
    def test_exact(self):
        assert block_index(0, 12, 3) == 0
        assert block_index(4, 12, 3) == 1
        assert block_index(11, 12, 3) == 2

    def test_ragged_clamps(self):
        # 10 over 3 -> tiles of 4: offset 9 is in the last block.
        assert block_index(9, 10, 3) == 2
