"""Tests for formats: distribution chains, memory kinds, owner patterns."""

import pytest

from repro import Cluster, Grid, Machine
from repro.formats.format import Format
from repro.machine.cluster import MemoryKind
from repro.util.errors import DistributionError
from repro.util.geometry import Interval, Rect


class TestFormatBasics:
    def test_default_undistributed(self):
        f = Format()
        assert not f.is_distributed
        assert f.memory is MemoryKind.SYSTEM_MEM
        assert f.notation() == "(undistributed)"

    def test_single_level(self):
        f = Format("xy -> xy")
        assert f.is_distributed
        assert f.notation() == "xy -> xy"

    def test_check_tensor_ndim(self):
        m = Machine.flat(2, 2)
        with pytest.raises(DistributionError):
            Format("xy -> xy").check(3, m)

    def test_check_too_many_levels(self):
        m = Machine.flat(2, 2)
        with pytest.raises(DistributionError):
            Format(["xy -> xy", "xy -> x"]).check(2, m)


class TestOwnedRect:
    def test_undistributed_homed_at_origin(self):
        m = Machine.flat(2, 2)
        f = Format()
        assert f.owned_rect(m, (0, 0), (4, 4)) == Rect.full((4, 4))
        assert f.owned_rect(m, (0, 1), (4, 4)) is None

    def test_tiled(self):
        m = Machine.flat(2, 2)
        f = Format("xy -> xy")
        rect = f.owned_rect(m, (1, 0), (4, 4))
        assert rect == Rect.of(Interval(2, 4), Interval(0, 2))

    def test_hierarchical_chain(self):
        # 2x1 nodes, each with 2 GPUs: tile rows over nodes, then rows
        # again over GPUs within the node (Section 3.2 "Hierarchy").
        cl = Cluster.gpu_cluster(2, gpus_per_node=2)
        m = Machine(cl, Grid(2), Grid(2))
        f = Format(["xy -> x", "xy -> x"], memory=MemoryKind.GPU_FB)
        rect = f.owned_rect(m, (1, 0), (8, 4))
        assert rect == Rect.of(Interval(4, 6), Interval(0, 4))
        rect = f.owned_rect(m, (1, 1), (8, 4))
        assert rect == Rect.of(Interval(6, 8), Interval(0, 4))


class TestOwnerPattern:
    def test_tiled_pattern(self):
        m = Machine.flat(2, 2)
        f = Format("xy -> xy")
        pat = f.owner_pattern(m, Rect.of(Interval(2, 4), Interval(0, 2)), (4, 4))
        assert pat == [1, 0]

    def test_broadcast_pattern_has_none(self):
        m = Machine.flat(2, 2, 2)
        f = Format("xy -> xy*")
        pat = f.owner_pattern(m, Rect.of(Interval(0, 2), Interval(0, 2)), (4, 4))
        assert pat == [0, 0, None]

    def test_undistributed_pattern(self):
        m = Machine.flat(2, 2)
        f = Format()
        assert f.owner_pattern(m, Rect.full((4, 4)), (4, 4)) == [0, 0]

    def test_straddling_returns_none(self):
        m = Machine.flat(2, 2)
        f = Format("xy -> xy")
        pat = f.owner_pattern(m, Rect.of(Interval(1, 3), Interval(0, 2)), (4, 4))
        assert pat is None

    def test_owner_pieces_cover(self):
        m = Machine.flat(2, 2)
        f = Format("xy -> xy")
        needed = Rect.of(Interval(1, 3), Interval(1, 3))
        pieces = f.owner_pieces(m, needed, (4, 4))
        assert len(pieces) == 4
        assert sum(r.volume for _, r in pieces) == needed.volume
