"""Memory-kind placement: GPU framebuffer vs host system memory.

The format language's memory argument (Figure 2's ``Memory::GPU_MEM``)
decides where home and cached instances live — which in turn decides
NIC rates (GPU-direct vs host) and OOM behaviour.
"""


from repro import (
    Assignment,
    Cluster,
    Format,
    Grid,
    Machine,
    MemoryKind,
    Schedule,
    TensorVar,
    index_vars,
)
from repro.codegen.lower import lower_to_plan
from repro.runtime.instances import DataEnvironment


def env_for(memory_kind):
    cluster = Cluster.gpu_cluster(2, gpus_per_node=2)
    machine = Machine(cluster, Grid(2, 2))
    f = Format("xy -> xy", memory=memory_kind)
    A = TensorVar("A", (8, 8), f)
    B = TensorVar("B", (8, 8), f)
    i, j = index_vars("i j")
    stmt = Assignment(A[i, j], B[i, j])
    plan = lower_to_plan(Schedule(stmt), machine)
    return DataEnvironment(plan), plan


class TestHomePlacement:
    def test_fb_formats_occupy_framebuffers(self):
        env, plan = env_for(MemoryKind.GPU_FB)
        fbs = [
            m for m in plan.machine.cluster.memories()
            if m.kind is MemoryKind.GPU_FB
        ]
        assert all(env.usage_of(m) > 0 for m in fbs)

    def test_host_formats_occupy_sysmem(self):
        env, plan = env_for(MemoryKind.SYSTEM_MEM)
        cluster = plan.machine.cluster
        for node in cluster.nodes:
            assert env.usage_of(node.system_memory) > 0
        fbs = [
            m for m in cluster.memories() if m.kind is MemoryKind.GPU_FB
        ]
        assert all(env.usage_of(m) == 0 for m in fbs)

    def test_cached_instances_follow_format(self):
        from repro.util.geometry import Interval, Rect

        env, plan = env_for(MemoryKind.SYSTEM_MEM)
        remote = Rect.of(Interval(4, 8), Interval(0, 4))
        env.register("B", (0, 0), remote)
        # The cached copy lands in host memory, not a framebuffer.
        proc = plan.machine.proc_at((0, 0))
        node = plan.machine.cluster.nodes[proc.node_id]
        assert env.usage_of(proc.memory) == 0
        assert env.usage_of(node.system_memory) > 0
