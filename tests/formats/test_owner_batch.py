"""The vectorized owner query mirrors the scalar one exactly.

``Format.owner_pattern_batch`` is the orbit executor's replacement for
per-context ``owner_pattern`` calls; these tests drive both over
randomized request rectangles — divisible and prime tensor extents,
fixed/broadcast machine dims, hierarchical chains — and require
identical answers everywhere.
"""

import numpy as np
import pytest

from repro.formats.format import Format
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.util.geometry import Interval, Rect


def random_rects(rng, shape, k):
    los = np.empty((len(shape), k), dtype=np.int64)
    his = np.empty((len(shape), k), dtype=np.int64)
    for d, extent in enumerate(shape):
        lo = rng.integers(0, extent, size=k)
        hi = lo + 1 + rng.integers(0, extent, size=k)
        his[d] = np.minimum(hi, extent)
        los[d] = lo
    return los, his


def assert_batch_matches_scalar(fmt, machine, shape, k=200, seed=0):
    rng = np.random.default_rng(seed)
    los, his = random_rects(rng, shape, k)
    pattern, valid = fmt.owner_pattern_batch(machine, los, his, shape)
    for j in range(k):
        rect = Rect(
            tuple(
                Interval(int(los[d, j]), int(his[d, j]))
                for d in range(len(shape))
            )
        )
        scalar = fmt.owner_pattern(machine, rect, shape)
        if scalar is None:
            assert not valid[j], f"rect {rect}: batch valid, scalar None"
            continue
        assert valid[j], f"rect {rect}: scalar {scalar}, batch invalid"
        expected = [-1 if p is None else p for p in scalar]
        assert pattern[:, j].tolist() == expected, f"rect {rect}"


class TestOwnerPatternBatch:
    @pytest.mark.parametrize("extent", [64, 61])
    def test_2d_tiling(self, extent):
        machine = Machine(Cluster.cpu_cluster(8), Grid(4, 4))
        fmt = Format("xy -> xy")
        assert_batch_matches_scalar(fmt, machine, (extent, extent))

    @pytest.mark.parametrize("notation", ["xy -> xy0", "xy -> x0y",
                                          "xy -> xy*", "xy -> x*y"])
    def test_fixed_and_broadcast_dims(self, notation):
        machine = Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))
        fmt = Format(notation)
        assert_batch_matches_scalar(fmt, machine, (48, 37))

    def test_row_blocks(self):
        machine = Machine(Cluster.cpu_cluster(8), Grid(16))
        fmt = Format("xy -> x")
        assert_batch_matches_scalar(fmt, machine, (53, 40))

    def test_3_tensor_on_2d_machine(self):
        machine = Machine(Cluster.cpu_cluster(8), Grid(4, 4))
        fmt = Format("xyz -> xy")
        assert_batch_matches_scalar(fmt, machine, (24, 23, 17))

    def test_hierarchical_chain(self):
        machine = Machine(Cluster.gpu_cluster(4), Grid(2, 2), Grid(2, 2))
        fmt = Format(["xy -> xy", "xy -> xy"])
        assert_batch_matches_scalar(fmt, machine, (64, 57))

    def test_undistributed(self):
        machine = Machine(Cluster.cpu_cluster(4), Grid(2, 2))
        fmt = Format()
        los = np.zeros((2, 3), dtype=np.int64)
        his = np.ones((2, 3), dtype=np.int64)
        pattern, valid = fmt.owner_pattern_batch(machine, los, his, (8, 8))
        assert valid.all()
        assert (pattern == 0).all()
