"""End-to-end coverage for collapse and mixed schedule features."""


from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)


class TestCollapse:
    def test_collapsed_loops_in_leaf(self, rng):
        # Fuse i and j, keep the fused loop local: the leaf spans its
        # full range, which reconstructs both parents exactly.
        n = 6
        f = Format("xy -> x")
        A = TensorVar("A", (n, n), f)
        B = TensorVar("B", (n, n), f)
        i, j, fv = index_vars("i j f")
        stmt = Assignment(A[i, j], B[i, j])
        sched = Schedule(stmt).collapse(i, j, fv)
        kern = compile_kernel(sched, Machine.flat(3))
        kern.execute({"B": rng.random((n, n))}, verify=True)

    def test_collapsed_then_split_distributed(self, rng):
        # Distribute the fused loop: each point task maps back to a
        # unique (i, j) pair — the supported (point) side of fusion.
        n = 4
        A = TensorVar("A", (n, n), Format("xy -> x"))
        B = TensorVar("B", (n, n), Format("xy -> x"))
        i, j, fv, fo, fi = index_vars("i j f fo fi")
        stmt = Assignment(A[i, j], B[i, j])
        sched = (
            Schedule(stmt)
            .collapse(i, j, fv)
            .distribute([fv], [fo], [fi], Grid(4))
        )
        kern = compile_kernel(sched, Machine.flat(4))
        # Fused ranges are not rectangular in (i, j): the leaf must
        # reconstruct per-point or the bounds must cover; the runtime
        # handles this by spanning full extents where needed.
        try:
            kern.execute({"B": rng.random((n, n))}, verify=True)
        except Exception as err:
            # Partial fused ranges are documented as unsupported.
            from repro.util.errors import LoweringError

            assert isinstance(err, LoweringError)


class TestMixedSchedules:
    def test_split_then_rotate_then_communicate(self, rng):
        # A deeper pipeline: split k, rotate the outer piece, rotate a
        # second loop differently — exercises provenance chains.
        n = 12
        f = Format("xy -> xy")
        A = TensorVar("A", (n, n), f)
        B = TensorVar("B", (n, n), f)
        C = TensorVar("C", (n, n), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        ko, ki, kos = index_vars("ko ki kos")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .split(k, ko, ki, 3)
            .reorder([ko, ii, ji, ki])
            .rotate(ko, [io], kos)
            .communicate([B, C], kos)
            .communicate(A, jo)
        )
        kern = compile_kernel(sched, Machine.flat(2, 2))
        kern.execute(
            {"B": rng.random((n, n)), "C": rng.random((n, n))}, verify=True
        )

    def test_double_split_reduction(self, rng):
        n = 16
        f = Format("xy -> xy")
        A = TensorVar("A", (n, n), f)
        B = TensorVar("B", (n, n), f)
        C = TensorVar("C", (n, n), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        ko, ki, kio, kii = index_vars("ko ki kio kii")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .split(k, ko, ki, 8)
            .split(ki, kio, kii, 2)
            .reorder([ko, kio, ii, ji, kii])
            .communicate([B, C], kio)
        )
        kern = compile_kernel(sched, Machine.flat(2, 2))
        kern.execute(
            {"B": rng.random((n, n)), "C": rng.random((n, n))}, verify=True
        )
