"""Analytic communication-volume checks (Section 4.1's asymptotics).

The distributed matmul literature gives closed-form per-processor
communication volumes; the simulator's traced volumes must match them:

* 2-D algorithms (Cannon/SUMMA): each processor receives one row panel
  of B and one column panel of C -> ``2 n^2 / sqrt(p)`` words per
  processor (minus its own tile).
* Johnson's 3-D: each processor receives one tile of B and one of C
  (``2 n^2 / p^(2/3)``) and sends one partial of A.
* Solomonik's 2.5-D with replication c reduces the 2-D volume by
  ``sqrt(c)`` asymptotically.
"""

import pytest

from repro import Machine
from repro.algorithms import cannon, johnson, solomonik, summa

WORD = 8


def traced_volume(kernel):
    trace = kernel.trace(check_capacity=False).trace
    return trace.total_copy_bytes


class Test2DVolume:
    @pytest.mark.parametrize("g", [2, 3, 4])
    def test_cannon_volume(self, g):
        n = 24 * g
        m = Machine.flat(g, g)
        # Each of g^2 processors fetches (g-1) tiles of B and of C,
        # each of size (n/g)^2: total = 2 g^2 (g-1) (n/g)^2 words.
        expected = 2 * g * g * (g - 1) * (n // g) ** 2 * WORD
        measured = traced_volume(cannon(m, n))
        assert measured == expected

    @pytest.mark.parametrize("g", [2, 3])
    def test_summa_equals_cannon_volume(self, g):
        # Broadcast vs shift changes the pattern, not the volume.
        n = 24 * g
        m = Machine.flat(g, g)
        assert traced_volume(summa(m, n)) == traced_volume(cannon(m, n))


class Test3DVolume:
    def test_johnson_volume(self):
        g = 2
        n = 24
        m = Machine.flat(g, g, g)
        tile_words = (n // g) ** 2
        # Fetches: B to the g^3 - g^2 processors off its face, likewise
        # C; reductions: A partials from the g^3 - g^2 off-face tasks.
        off_face = g ** 3 - g ** 2
        expected = 3 * off_face * tile_words * WORD
        assert traced_volume(johnson(m, n)) == expected

    def test_replication_reduces_volume_per_processor(self):
        # 2.5D on q=2, c=2 (8 procs) vs Cannon on 4x2 (8 procs): the
        # replicated version moves less data per unit of compute.
        n = 32
        vol_25d = traced_volume(solomonik(Machine.flat(2, 2, 2), n))
        vol_2d = traced_volume(cannon(Machine.flat(4, 2), n))
        assert vol_25d <= vol_2d


class TestHigherOrderVolume:
    def test_ttv_and_ttm_zero(self):
        from repro.algorithms import ttm, ttv

        assert traced_volume(ttv(Machine.flat(2, 2), 16)) == 0
        assert traced_volume(ttm(Machine.flat(4), 16, r=8)) == 0

    def test_innerprod_exactly_p_minus_one_words(self):
        from repro.algorithms import innerprod

        m = Machine.flat(2, 2)
        assert traced_volume(innerprod(m, 16)) == 3 * WORD

    def test_mttkrp_reduction_volume(self):
        from repro.algorithms import mttkrp

        g, n, r = 2, 16, 4
        m = Machine.flat(g, g, g)
        # Off-face tasks each reduce an (n/g) x r partial of A.
        off_face = g ** 3 - g  # owners are the (io, 0, 0) line
        expected = off_face * (n // g) * r * WORD
        assert traced_volume(mttkrp(m, n, r=r)) == expected
