"""Over- and under-decomposition: grids that don't match processor counts.

Johnson's algorithm on non-cube processor counts over- or
under-decomposes (Section 7.1.2); the machine wraps grid points onto
processors round-robin. These tests pin down that execution stays
correct and that the performance penalty is visible.
"""


from repro import Cluster, Grid, Machine
from repro.algorithms import cannon, johnson, summa
from repro.sim.params import LASSEN


class TestOverDecomposition:
    def test_grid_larger_than_cluster_correct(self, rng):
        # A 3x3x3 Johnson grid on 8 processors: 27 grid points wrap
        # onto 8 processors; results must be unchanged.
        n = 27
        cl = Cluster.cpu_cluster(8, sockets_per_node=1)
        m = Machine(cl, Grid(3, 3, 3))
        kern = johnson(m, n)
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        kern.execute(inputs, verify=True)

    def test_over_decomposition_slower(self):
        # Same processor count, cube grid vs wrapped larger grid: the
        # wrapped version serializes several tasks per processor.
        n = 4096
        cl = Cluster.cpu_cluster(8, sockets_per_node=1)
        exact = johnson(Machine(cl, Grid(2, 2, 2)), n).simulate(LASSEN)
        wrapped = johnson(Machine(cl, Grid(3, 3, 3)), n).simulate(LASSEN)
        assert wrapped.gflops_per_node < exact.gflops_per_node

    def test_summa_grid_wrap_correct(self, rng):
        n = 24
        cl = Cluster.cpu_cluster(2, sockets_per_node=1)
        m = Machine(cl, Grid(2, 2))  # 4 grid points, 2 processors
        kern = summa(m, n)
        kern.execute(
            {"B": rng.random((n, n)), "C": rng.random((n, n))}, verify=True
        )


class TestUnderDecomposition:
    def test_idle_processors_correct(self, rng):
        # A 2x2 grid on 8 processors leaves 4 idle; still correct.
        n = 16
        cl = Cluster.cpu_cluster(8, sockets_per_node=1)
        m = Machine(cl, Grid(2, 2))
        kern = cannon(m, n)
        res = kern.execute(
            {"B": rng.random((n, n)), "C": rng.random((n, n))}, verify=True
        )
        procs = {p for s in res.trace.steps for p in s.work}
        assert len(procs) == 4

    def test_idle_processors_waste_throughput(self):
        n = 8192
        cl = Cluster.cpu_cluster(8, sockets_per_node=1)
        full = cannon(Machine(cl, Grid(4, 2)), n).simulate(LASSEN)
        half = cannon(Machine(cl, Grid(2, 2)), n).simulate(LASSEN)
        assert half.gflops_per_node < 0.7 * full.gflops_per_node
