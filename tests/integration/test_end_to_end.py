"""End-to-end integration: whole-pipeline behaviours from the paper."""

import numpy as np

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.algorithms import cannon, johnson, solomonik, summa
from repro.sim.params import LASSEN


class TestDataAtRest:
    """Section 1: 'code can shape to data so that data may stay at rest'."""

    def test_computation_follows_data(self, rng):
        # Row-distributed data with a row-distributed schedule: zero
        # copies. The same statement with column-compute: copies appear.
        n = 12
        A = TensorVar("A", (n, n), Format("xy -> x"))
        B = TensorVar("B", (n, n), Format("xy -> x"))
        i, j = index_vars("i j")
        io, ii, jo, ji = index_vars("io ii jo ji")

        stmt = Assignment(A[i, j], B[i, j])
        matched = Schedule(stmt).distribute([i], [io], [ii], Grid(4))
        res = compile_kernel(matched, Machine.flat(4)).execute(
            {"B": rng.random((n, n))}
        )
        assert res.trace.total_copy_bytes == 0

        stmt2 = Assignment(A[i, j], B[i, j])
        mismatched = (
            Schedule(stmt2).reorder([j, i]).distribute([j], [jo], [ji], Grid(4))
        )
        res2 = compile_kernel(mismatched, Machine.flat(4)).execute(
            {"B": rng.random((n, n))}
        )
        assert res2.trace.total_copy_bytes > 0


class TestAlgorithmEquivalence:
    """All matmul algorithms compute the same thing (Figure 9)."""

    def test_all_agree(self, rng):
        n = 24
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        results = []
        results.append(
            summa(Machine.flat(2, 2), n).execute(dict(inputs)).outputs["A"]
        )
        results.append(
            cannon(Machine.flat(2, 2), n).execute(dict(inputs)).outputs["A"]
        )
        results.append(
            johnson(Machine.flat(2, 2, 2), n)
            .execute(dict(inputs))
            .outputs["A"]
        )
        results.append(
            solomonik(Machine.flat(2, 2, 2), n)
            .execute(dict(inputs))
            .outputs["A"]
        )
        for out in results[1:]:
            np.testing.assert_allclose(out, results[0])


class TestCommVolumeAsymptotics:
    """3-D algorithms move asymptotically less data (Section 4.1)."""

    def test_johnson_beats_2d_in_volume_at_scale(self, rng):
        n = 64
        p8_2d = Machine.flat(4, 2)
        p8_3d = Machine.flat(2, 2, 2)
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        v2d = summa(p8_2d, n).execute(dict(inputs)).trace.total_copy_bytes
        v3d = johnson(p8_3d, n).execute(dict(inputs)).trace.total_copy_bytes
        assert v3d < v2d

    def test_replication_costs_memory(self, rng):
        n = 64
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        hw3 = max(
            johnson(Machine.flat(2, 2, 2), n)
            .execute(dict(inputs))
            .memory_high_water.values()
        )
        hw2 = max(
            summa(Machine.flat(4, 2), n)
            .execute(dict(inputs))
            .memory_high_water.values()
        )
        assert hw3 > hw2


class TestSimulationConsistency:
    def test_weak_scaling_flat_for_comm_free_kernel(self):
        # A communication-free kernel weak-scales perfectly.
        from repro.algorithms import ttv
        from repro.bench.weak_scaling import square_grid, weak_cube_side
        from repro import Cluster

        rates = []
        for nodes in (1, 4, 16):
            cl = Cluster.cpu_cluster(nodes)
            gx, gy = square_grid(cl.num_processors)
            m = Machine(cl, Grid(gx, gy))
            n = weak_cube_side(320, nodes)
            rates.append(ttv(m, n).simulate(LASSEN).gbytes_per_node)
        assert max(rates) / min(rates) < 1.1

    def test_more_nodes_more_aggregate_flops(self):
        from repro import Cluster

        t1 = summa(Machine.flat(2, 2), 4096).simulate(LASSEN)
        cl = Cluster.cpu_cluster(8, sockets_per_node=2)
        m = Machine(cl, Grid(4, 4))
        t16 = summa(m, 8192).simulate(LASSEN)
        total1 = t1.gflops_per_node * t1.num_nodes
        total16 = t16.gflops_per_node * t16.num_nodes
        assert total16 > total1
