"""Error-path coverage: the compiler must fail loudly and helpfully."""

import pytest

from repro import (
    Assignment,
    DistributionError,
    Format,
    Grid,
    Machine,
    Schedule,
    ScheduleError,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.util.errors import LoweringError, OutOfMemoryError, ReproError


def gemm(fmt=None):
    f = Format(fmt) if fmt else Format()
    A = TensorVar("A", (8, 8), f)
    B = TensorVar("B", (8, 8), f)
    C = TensorVar("C", (8, 8), f)
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j]), (i, j, k)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for err in (
            DistributionError,
            ScheduleError,
            LoweringError,
            OutOfMemoryError,
        ):
            assert issubclass(err, ReproError)

    def test_oom_carries_details(self):
        err = OutOfMemoryError("n0/fb0", 100, 50)
        assert err.memory_name == "n0/fb0"
        assert err.needed_bytes == 100
        assert err.capacity_bytes == 50
        assert "n0/fb0" in str(err)


class TestCompileErrors:
    def test_format_machine_mismatch(self):
        stmt, _ = gemm("xy -> xy")
        sched = Schedule(stmt)
        with pytest.raises(DistributionError):
            compile_kernel(sched, Machine.flat(2, 2, 2))

    def test_distribute_extent_mismatch(self):
        stmt, (i, j, k) = gemm("xy -> xy")
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = Schedule(stmt).distribute(
            [i, j], [io, jo], [ii, ji], Grid(4, 4)
        )
        with pytest.raises(LoweringError):
            compile_kernel(sched, Machine.flat(2, 2))

    def test_schedule_errors_name_the_problem(self):
        stmt, (i, j, k) = gemm()
        with pytest.raises(ScheduleError, match="unknown index variable"):
            Schedule(stmt).split(index_vars("zz")[0], *index_vars("a b"), 2)
        with pytest.raises(ScheduleError, match="contiguous"):
            io, ii = index_vars("io ii")
            Schedule(stmt).split(i, io, ii, 2).reorder([io, j])

    def test_split_zero_chunk(self):
        stmt, (i, j, k) = gemm()
        with pytest.raises(ScheduleError):
            Schedule(stmt).split(i, *index_vars("io ii"), 0)

    def test_rotate_unknown_sources(self):
        stmt, (i, j, k) = gemm()
        with pytest.raises(ScheduleError):
            Schedule(stmt).rotate(k, index_vars("nope"), index_vars("ks")[0])


class TestDistributionErrors:
    def test_arity_mismatch_is_reported(self):
        from repro.formats.distribution import Distribution

        dist = Distribution.parse("xyz -> xy")
        T = TensorVar("T", (4, 4), Format(dist))
        with pytest.raises(DistributionError, match="names 3 tensor dims"):
            T.format.check(T.ndim, Machine.flat(2, 2))
