"""Hierarchical machines end to end: node grid x GPU grid (Section 3.1).

The paper's Lassen model: nodes arranged in a grid, each node a grid of
GPUs, with hierarchical data distributions and nested distribute
commands ("a distributed algorithm at the node level and another ...
for the multiple GPUs within a node").
"""


from repro import (
    Assignment,
    Cluster,
    Format,
    Grid,
    Machine,
    MemoryKind,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)


def hierarchical_gemm(n=16):
    cl = Cluster.gpu_cluster(4, gpus_per_node=4)
    machine = Machine(cl, Grid(2, 2), Grid(2, 2))
    f = Format(["xy -> xy", "xy -> xy"], memory=MemoryKind.GPU_FB)
    A = TensorVar("A", (n, n), f)
    B = TensorVar("B", (n, n), f)
    C = TensorVar("C", (n, n), f)
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    return machine, stmt, (A, B, C), (i, j, k)


class TestHierarchicalMatmul:
    def test_nested_distribution_correct(self, rng):
        machine, stmt, (A, B, C), (i, j, k) = hierarchical_gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        iio, iii, jio, jii = index_vars("iio iii jio jii")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .distribute(
                [ii, ji], [iio, jio], [iii, jii], Grid(2, 2), level=1
            )
        )
        kern = compile_kernel(sched, machine)
        kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
            verify=True,
        )

    def test_tasks_land_on_all_gpus(self, rng):
        machine, stmt, _, (i, j, k) = hierarchical_gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        iio, iii, jio, jii = index_vars("iio iii jio jii")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .distribute(
                [ii, ji], [iio, jio], [iii, jii], Grid(2, 2), level=1
            )
        )
        kern = compile_kernel(sched, machine)
        res = kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        )
        procs = {p for s in res.trace.steps for p in s.work}
        assert len(procs) == 16

    def test_intra_node_traffic_cheaper(self, rng):
        # SUMMA at the GPU level within each node tile: inner fetches
        # should be intra-node (NVLink), not NIC traffic.
        machine, stmt, (A, B, C), (i, j, k) = hierarchical_gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        iio, iii, jio, jii = index_vars("iio iii jio jii")
        ko, ki = index_vars("ko ki")
        sched = (
            Schedule(stmt)
            .distribute([i, j], [io, jo], [ii, ji], Grid(2, 2))
            .distribute(
                [ii, ji], [iio, jio], [iii, jii], Grid(2, 2), level=1
            )
            .split(k, ko, ki, 8)
            .reorder([ko, iii, jii, ki])
            .communicate(A, jio)
            .communicate([B, C], ko)
        )
        kern = compile_kernel(sched, machine)
        res = kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        )
        intra = sum(
            c.nbytes for c in res.trace.copies if not c.inter_node
        )
        # Hierarchical tiling keeps the k-chunk exchange inside nodes.
        assert intra > 0


class TestHierarchicalPlacement:
    def test_node_piece_shared_by_gpus(self):
        # One distribution level on a two-level machine: the node's
        # piece is replicated across its GPUs' views.
        cl = Cluster.gpu_cluster(2, gpus_per_node=2)
        machine = Machine(cl, Grid(2), Grid(2))
        f = Format("xy -> x")
        r0 = f.owned_rect(machine, (0, 0), (8, 8))
        r1 = f.owned_rect(machine, (0, 1), (8, 8))
        assert r0 == r1
