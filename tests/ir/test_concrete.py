"""Tests for concrete index notation structure and printing."""


from repro import Assignment, Schedule, TensorVar, index_vars
from repro.ir.concrete import (
    Assign,
    Sequence,
    find_forall,
    loop_order,
    replace_body,
)
from repro.ir.lower_tin import lower_to_concrete


def gemm():
    A = TensorVar("A", (4, 4))
    B = TensorVar("B", (4, 4))
    C = TensorVar("C", (4, 4))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j]), (i, j, k)


class TestLowerToConcrete:
    def test_loop_structure(self):
        stmt, (i, j, k) = gemm()
        cin, graph = lower_to_concrete(stmt)
        assert loop_order(cin) == [i, j, k]
        assert graph.extent(i) == 4

    def test_leaf_reduce_flag(self):
        stmt, _ = gemm()
        cin, _ = lower_to_concrete(stmt)
        leaf = cin.foralls()[-1].body
        assert isinstance(leaf, Assign)
        assert leaf.reduce

    def test_pointwise_not_reduce(self):
        A = TensorVar("A", (4,))
        b = TensorVar("b", (4,))
        i, = index_vars("i")
        cin, _ = lower_to_concrete(Assignment(A[i], b[i]))
        assert not cin.foralls()[-1].body.reduce


class TestTreeHelpers:
    def test_find_forall(self):
        stmt, (i, j, k) = gemm()
        cin, _ = lower_to_concrete(stmt)
        assert find_forall(cin, j).var == j
        assert find_forall(cin, index_vars("zz")[0]) is None

    def test_replace_body(self):
        stmt, (i, j, k) = gemm()
        cin, _ = lower_to_concrete(stmt)
        new_leaf = Assign(stmt.lhs, stmt.rhs, reduce=False)
        assert replace_body(cin, k, new_leaf)
        assert cin.foralls()[-1].body is new_leaf

    def test_sequence_foralls(self):
        stmt, (i, j, k) = gemm()
        cin, _ = lower_to_concrete(stmt)
        seq = Sequence([cin])
        assert [f.var for f in seq.foralls()] == [i, j, k]


class TestPretty:
    def test_plain_nest(self):
        stmt, _ = gemm()
        cin, _ = lower_to_concrete(stmt)
        text = cin.pretty()
        assert text.splitlines()[0] == "forall i"
        assert "A(i, j) += (B(i, k) * C(k, j))" in text

    def test_tags_rendered(self):
        stmt, _ = gemm()
        sched = Schedule(stmt)
        i, j, k = stmt.all_vars
        sched.distribute([i]).communicate("B", k)
        text = sched.pretty()
        assert "s.t. distribute" in text
        assert "communicate(B)" in text

    def test_substitute_rendered(self):
        stmt, _ = gemm()
        sched = Schedule(stmt)
        i, j, k = stmt.all_vars
        sched.substitute([k], "blas_gemm")
        assert "substitute(blas_gemm)" in sched.pretty()
