"""Tests for tensor index notation expressions."""

import pytest

from repro import TensorVar, index_vars
from repro.ir.expr import Access, Add, IndexVar, Literal, Mul


class TestIndexVar:
    def test_identity_by_name(self):
        assert IndexVar("i") == IndexVar("i")
        assert IndexVar("i") != IndexVar("j")
        assert hash(IndexVar("i")) == hash(IndexVar("i"))

    def test_index_vars_helper(self):
        i, j, k = index_vars("i j k")
        assert [v.name for v in (i, j, k)] == ["i", "j", "k"]
        a, b = index_vars("a, b")
        assert [a.name, b.name] == ["a", "b"]

    def test_empty_name(self):
        with pytest.raises(ValueError):
            IndexVar("")


class TestAccess:
    def test_call_and_getitem(self):
        i, j = index_vars("i j")
        A = TensorVar("A", (4, 4))
        assert isinstance(A(i, j), Access)
        assert isinstance(A[i, j], Access)
        assert A[i, j].indices == (i, j)

    def test_arity_check(self):
        i, j = index_vars("i j")
        A = TensorVar("A", (4, 4))
        with pytest.raises(ValueError):
            A(i)
        with pytest.raises(ValueError):
            A(i, j, i)

    def test_no_diagonal_access(self):
        i, = index_vars("i")
        A = TensorVar("A", (4, 4))
        with pytest.raises(ValueError):
            A(i, i)

    def test_scalar_access(self):
        a = TensorVar("a", ())
        acc = a[()]
        assert acc.indices == ()


class TestOperators:
    def test_mul(self):
        i, j, k = index_vars("i j k")
        B = TensorVar("B", (4, 4))
        C = TensorVar("C", (4, 4))
        expr = B[i, k] * C[k, j]
        assert isinstance(expr, Mul)
        assert [a.tensor.name for a in expr.accesses()] == ["B", "C"]

    def test_add_and_literals(self):
        i, = index_vars("i")
        b = TensorVar("b", (4,))
        expr = b[i] + 2
        assert isinstance(expr, Add)
        assert isinstance(expr.rhs, Literal)
        expr2 = 3 * b[i]
        assert isinstance(expr2, Mul)

    def test_index_variables_order(self):
        i, j, k = index_vars("i j k")
        B = TensorVar("B", (4, 4, 4))
        c = TensorVar("c", (4,))
        expr = B[i, j, k] * c[k]
        assert expr.index_variables() == [i, j, k]

    def test_rejects_junk(self):
        i, = index_vars("i")
        b = TensorVar("b", (4,))
        with pytest.raises(TypeError):
            b[i] * "nope"
