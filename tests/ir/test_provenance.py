"""Tests for the provenance graph — the bounds-analysis engine."""

import pytest

from repro.ir.expr import index_vars
from repro.ir.provenance import VarGraph
from repro.util.errors import LoweringError, ScheduleError
from repro.util.geometry import Interval


def make_graph(**extents):
    vars_ = index_vars(" ".join(extents))
    return VarGraph({v: extents[v.name] for v in vars_}), dict(
        (v.name, v) for v in vars_
    )


class TestSplitDivide:
    def test_split_extents(self):
        graph, vs = make_graph(i=10)
        io, ii = index_vars("io ii")
        graph.add_split(vs["i"], io, ii, 4)
        assert graph.extent(io) == 3  # ceil(10/4)
        assert graph.extent(ii) == 4

    def test_divide_extents(self):
        graph, vs = make_graph(i=10)
        io, ii = index_vars("io ii")
        graph.add_divide(vs["i"], io, ii, 2)
        assert graph.extent(io) == 2
        assert graph.extent(ii) == 5

    def test_reconstruction_point(self):
        graph, vs = make_graph(i=12)
        io, ii = index_vars("io ii")
        graph.add_split(vs["i"], io, ii, 4)
        env = {io: Interval.point(2), ii: Interval.point(1)}
        assert graph.value_of(vs["i"], env) == Interval.point(9)

    def test_reconstruction_range(self):
        graph, vs = make_graph(i=12)
        io, ii = index_vars("io ii")
        graph.add_split(vs["i"], io, ii, 4)
        env = {io: Interval.point(1), ii: Interval.extent(4)}
        assert graph.value_of(vs["i"], env) == Interval(4, 8)

    def test_reconstruction_clips_ragged(self):
        # 10 over chunks of 4: the last chunk is [8, 10).
        graph, vs = make_graph(i=10)
        io, ii = index_vars("io ii")
        graph.add_split(vs["i"], io, ii, 4)
        env = {io: Interval.point(2), ii: Interval.extent(4)}
        assert graph.value_of(vs["i"], env) == Interval(8, 10)

    def test_nested_splits(self):
        graph, vs = make_graph(i=16)
        io, ii, iio, iii = index_vars("io ii iio iii")
        graph.add_split(vs["i"], io, ii, 8)
        graph.add_split(ii, iio, iii, 2)
        env = {
            io: Interval.point(1),
            iio: Interval.point(3),
            iii: Interval.extent(2),
        }
        assert graph.value_of(vs["i"], env) == Interval(14, 16)

    def test_double_decompose_rejected(self):
        graph, vs = make_graph(i=10)
        io, ii, a, b = index_vars("io ii a b")
        graph.add_split(vs["i"], io, ii, 2)
        with pytest.raises(ScheduleError):
            graph.add_split(vs["i"], a, b, 2)

    def test_name_collision_rejected(self):
        graph, vs = make_graph(i=10, j=10)
        with pytest.raises(ScheduleError):
            graph.add_split(vs["i"], vs["j"], index_vars("ii")[0], 2)


class TestRotate:
    def test_point_rotation(self):
        graph, vs = make_graph(k=3, io=3)
        kos, = index_vars("kos")
        graph.add_rotate(vs["k"], [vs["io"]], kos)
        env = {kos: Interval.point(2), vs["io"]: Interval.point(2)}
        # k = (2 + 2) mod 3 = 1
        assert graph.value_of(vs["k"], env) == Interval.point(1)

    def test_range_rotation_approximates(self):
        graph, vs = make_graph(k=3, io=3)
        kos, = index_vars("kos")
        graph.add_rotate(vs["k"], [vs["io"]], kos)
        env = {kos: Interval.extent(3), vs["io"]: Interval.point(1)}
        assert graph.value_of(vs["k"], env) == Interval.extent(3)

    def test_range_rotation_exact_raises(self):
        graph, vs = make_graph(k=3, io=3)
        kos, = index_vars("kos")
        graph.add_rotate(vs["k"], [vs["io"]], kos)
        env = {kos: Interval.extent(3), vs["io"]: Interval.point(1)}
        with pytest.raises(LoweringError):
            graph.value_of(vs["k"], env, exact=True)

    def test_is_rotate_result(self):
        graph, vs = make_graph(k=3, io=3)
        kos, = index_vars("kos")
        graph.add_rotate(vs["k"], [vs["io"]], kos)
        assert graph.is_rotate_result(kos)
        assert not graph.is_rotate_result(vs["io"])


class TestFuse:
    def test_fused_extent(self):
        graph, vs = make_graph(i=3, j=4)
        f, = index_vars("f")
        graph.add_fuse(vs["i"], vs["j"], f)
        assert graph.extent(f) == 12

    def test_point_reconstruction(self):
        graph, vs = make_graph(i=3, j=4)
        f, = index_vars("f")
        graph.add_fuse(vs["i"], vs["j"], f)
        env = {f: Interval.point(7)}
        assert graph.value_of(vs["i"], env) == Interval.point(1)
        assert graph.value_of(vs["j"], env) == Interval.point(3)

    def test_full_range_reconstruction(self):
        graph, vs = make_graph(i=3, j=4)
        f, = index_vars("f")
        graph.add_fuse(vs["i"], vs["j"], f)
        env = {f: Interval.extent(12)}
        assert graph.value_of(vs["i"], env) == Interval.extent(3)

    def test_partial_range_exact_raises(self):
        graph, vs = make_graph(i=3, j=4)
        f, = index_vars("f")
        graph.add_fuse(vs["i"], vs["j"], f)
        env = {f: Interval(2, 7)}
        with pytest.raises(LoweringError):
            graph.value_of(vs["i"], env, exact=True)


class TestMisc:
    def test_unknown_var(self):
        graph, vs = make_graph(i=4)
        with pytest.raises(ScheduleError):
            graph.extent(index_vars("zz")[0])
        with pytest.raises(ScheduleError):
            graph.value_of(index_vars("zz")[0], {})

    def test_leaf_descendants(self):
        graph, vs = make_graph(i=8)
        io, ii, iio, iii = index_vars("io ii iio iii")
        graph.add_split(vs["i"], io, ii, 4)
        graph.add_split(ii, iio, iii, 2)
        assert graph.leaf_descendants(vs["i"]) == [io, iio, iii]

    def test_copy_is_independent(self):
        graph, vs = make_graph(i=8)
        dup = graph.copy()
        io, ii = index_vars("io ii")
        graph.add_split(vs["i"], io, ii, 2)
        assert not dup.knows(io)
