"""Tests for tensor variables, assignments and the einsum oracle."""

import numpy as np
import pytest

from repro import Assignment, TensorVar, index_vars, reference_einsum


class TestTensorVar:
    def test_properties(self):
        A = TensorVar("A", (3, 5))
        assert A.ndim == 2
        assert A.nbytes == 3 * 5 * 8
        assert A.itemsize == 8

    def test_scalar(self):
        a = TensorVar("a", ())
        assert a.ndim == 0
        assert a.nbytes == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            TensorVar("", (2,))
        with pytest.raises(ValueError):
            TensorVar("A", (0, 2))


class TestAssignment:
    def test_reduction_vars(self):
        i, j, k = index_vars("i j k")
        A = TensorVar("A", (4, 4))
        B = TensorVar("B", (4, 4))
        C = TensorVar("C", (4, 4))
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        assert stmt.free_vars == [i, j]
        assert stmt.reduction_vars == [k]
        assert stmt.all_vars == [i, j, k]

    def test_domains(self):
        i, j, k = index_vars("i j k")
        A = TensorVar("A", (4, 6))
        B = TensorVar("B", (4, 6, 8))
        c = TensorVar("c", (8,))
        stmt = Assignment(A[i, j], B[i, j, k] * c[k])
        assert stmt.domains() == {i: 4, j: 6, k: 8}

    def test_domain_mismatch(self):
        i, j = index_vars("i j")
        A = TensorVar("A", (4, 4))
        B = TensorVar("B", (5, 4))
        with pytest.raises(ValueError):
            Assignment(A[i, j], B[i, j])

    def test_tensors_output_first(self):
        i, j, k = index_vars("i j k")
        A = TensorVar("A", (4, 4))
        B = TensorVar("B", (4, 4))
        stmt = Assignment(A[i, j], B[i, k] * B[k, j])
        assert [t.name for t in stmt.tensors()] == ["A", "B"]

    def test_flops_per_point(self):
        i, j, k, l = index_vars("i j k l")
        A = TensorVar("A", (4, 4))
        B = TensorVar("B", (4, 4, 4))
        C = TensorVar("C", (4, 4))
        D = TensorVar("D", (4, 4))
        matmul = Assignment(A[i, j], C[i, k] * D[k, j])
        assert matmul.flops_per_point() == 2  # one mul + one add
        mttkrp = Assignment(A[i, l], B[i, j, k] * C[j, l] * D[k, l])
        assert mttkrp.flops_per_point() == 3  # two muls + one add


class TestReferenceEinsum:
    def test_matmul(self, rng):
        i, j, k = index_vars("i j k")
        A = TensorVar("A", (5, 7))
        B = TensorVar("B", (5, 6))
        C = TensorVar("C", (6, 7))
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        arrays = {"B": rng.random((5, 6)), "C": rng.random((6, 7))}
        np.testing.assert_allclose(
            reference_einsum(stmt, arrays), arrays["B"] @ arrays["C"]
        )

    def test_sum_of_products(self, rng):
        i, = index_vars("i")
        a = TensorVar("a", (5,))
        b = TensorVar("b", (5,))
        c = TensorVar("c", (5,))
        stmt = Assignment(a[i], b[i] * c[i] + b[i])
        arrays = {"b": rng.random(5), "c": rng.random(5)}
        np.testing.assert_allclose(
            reference_einsum(stmt, arrays),
            arrays["b"] * arrays["c"] + arrays["b"],
        )

    def test_scalar_output(self, rng):
        i, = index_vars("i")
        a = TensorVar("a", ())
        b = TensorVar("b", (5,))
        stmt = Assignment(a[()], b[i] * b[i])
        arrays = {"b": rng.random(5)}
        np.testing.assert_allclose(
            reference_einsum(stmt, arrays), np.dot(arrays["b"], arrays["b"])
        )

    def test_literal_scaling(self, rng):
        i, = index_vars("i")
        a = TensorVar("a", (5,))
        b = TensorVar("b", (5,))
        stmt = Assignment(a[i], 3 * b[i])
        arrays = {"b": rng.random(5)}
        np.testing.assert_allclose(
            reference_einsum(stmt, arrays), 3 * arrays["b"]
        )
