"""Unit tests for the physical cluster model."""

import pytest

from repro.machine.cluster import (
    GIB,
    Cluster,
    MemoryKind,
    ProcessorKind,
)


class TestCpuCluster:
    def test_shape(self):
        cl = Cluster.cpu_cluster(4)
        assert cl.num_nodes == 4
        assert cl.procs_per_node == 2
        assert cl.num_processors == 8
        assert cl.processor_kind is ProcessorKind.CPU_SOCKET

    def test_sockets_share_system_memory(self):
        cl = Cluster.cpu_cluster(2)
        node = cl.nodes[0]
        mems = {proc.memory for proc in node.processors}
        assert len(mems) == 1
        assert node.processors[0].memory.kind is MemoryKind.SYSTEM_MEM

    def test_node_ids(self):
        cl = Cluster.cpu_cluster(3)
        assert [p.node_id for p in cl.processors] == [0, 0, 1, 1, 2, 2]


class TestGpuCluster:
    def test_shape(self):
        cl = Cluster.gpu_cluster(2)
        assert cl.procs_per_node == 4
        assert cl.num_processors == 8
        assert cl.processor_kind is ProcessorKind.GPU

    def test_framebuffers_distinct(self):
        cl = Cluster.gpu_cluster(1)
        mems = {proc.memory for proc in cl.processors}
        assert len(mems) == 4
        for mem in mems:
            assert mem.kind is MemoryKind.GPU_FB

    def test_capacity_reserve(self):
        cl = Cluster.gpu_cluster(1, framebuffer_gib=16, reserved_gib=1.0)
        fb = cl.processors[0].memory
        assert fb.capacity_bytes == 15 * GIB

    def test_memories_include_sysmem(self):
        cl = Cluster.gpu_cluster(1)
        kinds = {m.kind for m in cl.memories()}
        assert kinds == {MemoryKind.SYSTEM_MEM, MemoryKind.GPU_FB}


class TestValidation:
    def test_empty_cluster(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            Cluster.build(
                num_nodes=0,
                procs_per_node=1,
                proc_kind=ProcessorKind.CPU_SOCKET,
                proc_mem_kind=MemoryKind.SYSTEM_MEM,
                proc_mem_capacity=GIB,
            )
