"""Unit tests for processor grids."""

import pytest

from repro.machine.grid import Grid


class TestGrid:
    def test_basic(self):
        g = Grid(4, 2)
        assert g.dim == 2
        assert g.size == 8
        assert g.shape == (4, 2)
        assert g.x == 4 and g.y == 2

    def test_3d(self):
        g = Grid(2, 3, 4)
        assert g.z == 4
        assert g.size == 24

    def test_invalid(self):
        with pytest.raises(ValueError):
            Grid()
        with pytest.raises(ValueError):
            Grid(0, 2)
        with pytest.raises(ValueError):
            Grid(-1)

    def test_points_row_major(self):
        g = Grid(2, 2)
        assert list(g.points()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_linearize_roundtrip(self):
        g = Grid(3, 4, 5)
        for idx, point in enumerate(g.points()):
            assert g.linearize(point) == idx
            assert g.delinearize(idx) == point

    def test_linearize_bounds(self):
        g = Grid(2, 2)
        with pytest.raises(ValueError):
            g.linearize((2, 0))
        with pytest.raises(ValueError):
            g.linearize((0,))
        with pytest.raises(ValueError):
            g.delinearize(4)

    def test_torus_distance(self):
        g = Grid(4, 4)
        assert g.torus_distance((0, 0), (1, 0)) == 1
        assert g.torus_distance((0, 0), (3, 0)) == 1  # wraparound
        assert g.torus_distance((0, 0), (2, 2)) == 4
        assert g.torus_distance((1, 1), (1, 1)) == 0
