"""Unit tests for the logical machine (grid views of clusters)."""

import pytest

from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine


class TestFlatMachine:
    def test_flat_helper(self):
        m = Machine.flat(2, 3)
        assert m.shape == (2, 3)
        assert m.size == 6
        assert m.cluster.num_processors == 6

    def test_proc_at_row_major(self):
        m = Machine.flat(2, 2)
        ids = [m.proc_at(p).proc_id for p in m.points()]
        assert ids == [0, 1, 2, 3]

    def test_distinct_points_distinct_procs(self):
        m = Machine.flat(3, 3)
        procs = {m.proc_at(p).proc_id for p in m.points()}
        assert len(procs) == 9

    def test_over_decomposition_wraps(self):
        # A 3x3 grid on 4 processors: points wrap round-robin.
        cl = Cluster.cpu_cluster(4, sockets_per_node=1)
        m = Machine(cl, Grid(3, 3))
        ids = [m.proc_at(p).proc_id for p in m.points()]
        assert ids == [0, 1, 2, 3, 0, 1, 2, 3, 0]

    def test_under_decomposition_leaves_idle(self):
        cl = Cluster.cpu_cluster(8, sockets_per_node=1)
        m = Machine(cl, Grid(2, 3))
        used = {m.proc_at(p).proc_id for p in m.points()}
        assert len(used) == 6  # two processors idle

    def test_flat_grid_on_multi_proc_nodes(self):
        # 4 nodes x 4 GPUs viewed as one flat 4x4 grid: consecutive
        # grid points in the last dimension land on the same node.
        cl = Cluster.gpu_cluster(4)
        m = Machine(cl, Grid(4, 4))
        row0 = [m.proc_at((0, j)).node_id for j in range(4)]
        assert row0 == [0, 0, 0, 0]


class TestHierarchicalMachine:
    def test_level_coords(self):
        cl = Cluster.gpu_cluster(4)
        m = Machine(cl, Grid(2, 2), Grid(2, 2))
        assert m.dim == 4
        assert m.shape == (2, 2, 2, 2)
        assert m.level_coords((1, 0, 0, 1)) == [(1, 0), (0, 1)]

    def test_outer_level_picks_node(self):
        cl = Cluster.gpu_cluster(4)
        m = Machine(cl, Grid(2, 2), Grid(2, 2))
        assert m.proc_at((0, 0, 0, 0)).node_id == 0
        assert m.proc_at((1, 1, 0, 0)).node_id == 3

    def test_inner_level_picks_local_proc(self):
        cl = Cluster.gpu_cluster(2)
        m = Machine(cl, Grid(2,), Grid(4,))
        locals_ = [m.proc_at((0, g)).local_index for g in range(4)]
        assert locals_ == [0, 1, 2, 3]

    def test_inner_grid_too_large(self):
        cl = Cluster.gpu_cluster(2, gpus_per_node=2)
        with pytest.raises(ValueError):
            Machine(cl, Grid(2,), Grid(4,))

    def test_torus_distance_concatenated(self):
        m = Machine.flat(4, 4)
        assert m.torus_distance((0, 0), (3, 3)) == 2  # wraps both dims

    def test_needs_grid(self):
        cl = Cluster.cpu_cluster(1)
        with pytest.raises(ValueError):
            Machine(cl)
