"""PhaseBreakdown: derived from priced columns, parity-invisible."""

import pytest

from repro.algorithms.matmul import cannon, summa
from repro.bench.weak_scaling import square_grid, weak_matrix_size
from repro.machine.cluster import Cluster
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.sim.params import LASSEN
from repro.sim.report import PhaseBreakdown, PhaseCost


def small_kernel(algo=cannon, nodes=4, base_n=1024):
    cluster = Cluster.cpu_cluster(nodes)
    machine = Machine(cluster, Grid(*square_grid(cluster.num_processors)))
    return algo(machine, weak_matrix_size(base_n, nodes))


class TestParity:
    def test_breakdown_does_not_change_report_equality(self):
        kern = small_kernel()
        plain = kern.simulate(LASSEN)
        rich = kern.simulate(LASSEN, breakdown=True)
        assert plain.breakdown is None
        assert rich.breakdown is not None
        # Dataclass equality (the orbit parity pin) ignores breakdown.
        assert plain == rich

    def test_breakdown_excluded_from_repr(self):
        rich = small_kernel().simulate(LASSEN, breakdown=True)
        assert "breakdown" not in repr(rich)

    @pytest.mark.parametrize("mode", ["orbit", "batched", "scalar"])
    def test_all_modes_accept_breakdown(self, mode):
        kern = small_kernel()
        report = kern.simulate(LASSEN, mode=mode, breakdown=True)
        assert report.breakdown is not None
        assert len(report.breakdown.phases) == report.num_steps


class TestSums:
    @pytest.mark.parametrize("algo", [cannon, summa])
    def test_phase_sums_reproduce_report_exactly(self, algo):
        report = small_kernel(algo).simulate(LASSEN, breakdown=True)
        bd = report.breakdown
        # Identical floats, identical summation order — not approx.
        assert sum(p.total_s for p in bd.phases) == report.total_time
        assert sum(p.comm_s for p in bd.phases) == report.comm_time
        assert sum(p.compute_s for p in bd.phases) == report.compute_time
        assert sum(p.flops for p in bd.phases) == report.total_flops
        assert (
            sum(p.copy_bytes for p in bd.phases) == report.total_copy_bytes
        )
        assert (
            sum(p.inter_node_bytes for p in bd.phases)
            == report.inter_node_bytes
        )

    def test_class_times_bound_phase_compute(self):
        report = small_kernel().simulate(LASSEN, breakdown=True)
        for phase in report.breakdown.phases:
            if phase.class_times:
                worst = max(t for _p, _c, t in phase.class_times)
                assert worst == phase.compute_s

    def test_labels_come_from_trace_steps(self):
        kern = small_kernel()
        trace = kern.trace(mode="orbit").trace
        report = kern.simulate(LASSEN, breakdown=True)
        assert [p.label for p in report.breakdown.phases] == [
            s.label for s in trace.steps
        ]


class TestPhaseCost:
    def phase(self, **overrides):
        base = dict(
            index=0, label="step", comm_s=1.0, compute_s=2.0,
            overhead_s=0.1, total_s=2.1, copy_bytes=10,
            inter_node_bytes=5, flops=100.0,
        )
        base.update(overrides)
        return PhaseCost(**base)

    def test_dominant_resource(self):
        assert self.phase().dominant == "compute"
        assert self.phase(comm_s=9.0).dominant == "comm"
        assert (
            self.phase(comm_s=0.0, compute_s=0.0, overhead_s=1.0).dominant
            == "overhead"
        )

    def test_breakdown_queries(self):
        phases = (
            self.phase(index=0, total_s=3.0),
            self.phase(index=1, comm_s=9.0, total_s=1.0),
            self.phase(index=2, total_s=2.0),
        )
        bd = PhaseBreakdown(phases=phases)
        assert bd.total_s == pytest.approx(6.0)
        assert [p.index for p in bd.top(2)] == [0, 2]
        assert [p.index for p in bd.dominated_by("comm")] == [1]
