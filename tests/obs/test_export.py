"""Chrome trace-event exporters and the minimal schema validator."""

import json

import pytest

from repro.obs.export import (
    breakdown_to_chrome,
    merge_traces,
    profile_summary,
    spans_to_chrome,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.spans import SpanRecord
from repro.sim.report import PhaseBreakdown, PhaseCost


def make_breakdown():
    return PhaseBreakdown(phases=(
        PhaseCost(
            index=0, label="fetch A", comm_s=0.5, compute_s=1.0,
            overhead_s=0.1, total_s=1.1, copy_bytes=100,
            inter_node_bytes=80, flops=1e9,
            class_times=((0, 4, 1.0), (2, 12, 0.4)),
        ),
        PhaseCost(
            index=1, label="fetch A", comm_s=0.5, compute_s=1.0,
            overhead_s=0.1, total_s=1.1, copy_bytes=100,
            inter_node_bytes=80, flops=1e9, price_replayed=True,
        ),
    ))


def make_span(name="s", pid=1, start=0.0, dur=0.5):
    return SpanRecord(
        name=name, pid=pid, tid=7, start_s=start, dur_s=dur,
        self_s=dur, depth=0,
    )


class TestBreakdownExport:
    def test_valid_and_sequential(self):
        trace = breakdown_to_chrome(make_breakdown())
        assert validate_chrome_trace(trace) is None
        slices = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        ]
        assert len(slices) == 2
        # Phases lay out end to end in simulated microseconds.
        assert slices[0]["ts"] == 0
        assert slices[1]["ts"] == pytest.approx(1.1e6)
        assert slices[0]["dur"] == pytest.approx(1.1e6)

    def test_replay_provenance_is_a_category(self):
        trace = breakdown_to_chrome(make_breakdown())
        cats = [
            e.get("cat") for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0
        ]
        assert cats == ["priced", "replayed"]

    def test_one_lane_per_node_class(self):
        trace = breakdown_to_chrome(make_breakdown())
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "class proc 0" in lanes
        assert "class proc 2" in lanes
        assert "comm" in lanes


class TestSpanExport:
    def test_empty(self):
        assert spans_to_chrome([]) == {"traceEvents": []}

    def test_rebased_and_per_pid_lanes(self):
        records = [
            make_span("parent", pid=10, start=100.0),
            make_span("worker", pid=11, start=100.25),
        ]
        trace = spans_to_chrome(records)
        assert validate_chrome_trace(trace) is None
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["ts"] == 0  # rebased to the earliest record
        assert slices[1]["ts"] == pytest.approx(0.25e6)
        assert {e["pid"] for e in slices} == {10, 11}

    def test_merge_traces(self):
        merged = merge_traces(
            breakdown_to_chrome(make_breakdown()),
            spans_to_chrome([make_span()]),
        )
        assert validate_chrome_trace(merged) is None

    def test_profile_summary_json_ready(self):
        summary = profile_summary([make_span("a"), make_span("a")])
        assert summary["a"]["calls"] == 2
        json.dumps(summary)  # must serialize


class TestWrite:
    def test_write_trace_roundtrips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(breakdown_to_chrome(make_breakdown()), str(path))
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) is None


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) is not None

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) is not None

    def test_rejects_nameless_event(self):
        bad = {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        assert "name" in validate_chrome_trace(bad)

    def test_rejects_negative_duration(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -1}
        ]}
        assert "dur" in validate_chrome_trace(bad)

    def test_rejects_missing_ts(self):
        bad = {"traceEvents": [{"name": "x", "ph": "X", "dur": 1}]}
        assert "ts" in validate_chrome_trace(bad)

    def test_accepts_metadata_events(self):
        ok = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "main"}},
        ]}
        assert validate_chrome_trace(ok) is None
