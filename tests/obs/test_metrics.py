"""Metrics registry: counters, sources, fork deltas, determinism."""

import pytest

from repro.obs.metrics import METRICS, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestRegistry:
    def test_counters_accumulate(self, reg):
        reg.inc("a.hits")
        reg.inc("a.hits", 4)
        assert reg.get("a.hits") == 5

    def test_gauges_last_value_wins(self, reg):
        reg.observe("depth", 3)
        reg.observe("depth", 7)
        assert reg.get("depth") == 7

    def test_snapshot_sorted_and_complete(self, reg):
        reg.inc("z.count", 2)
        reg.observe("a.gauge", 1.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == {"a.gauge": 1.5, "z.count": 2}

    def test_sources_contribute_without_clobbering(self, reg):
        reg.register_source("src", lambda: {"cache.hits": 10, "own": 1})
        reg.inc("cache.hits", 99)  # explicit counter wins
        snap = reg.snapshot()
        assert snap["cache.hits"] == 99
        assert snap["own"] == 1

    def test_raising_source_is_skipped(self, reg):
        def bad():
            raise RuntimeError("no")

        reg.register_source("bad", bad)
        reg.inc("fine", 1)
        assert reg.snapshot() == {"fine": 1}

    def test_snapshot_without_sources(self, reg):
        reg.register_source("src", lambda: {"derived": 5})
        assert reg.snapshot(sources=False) == {}

    def test_reset_keeps_sources(self, reg):
        reg.register_source("src", lambda: {"derived": 5})
        reg.inc("gone", 1)
        reg.reset()
        assert reg.snapshot() == {"derived": 5}


class TestForkEnvelope:
    def test_delta_subtracts_inherited_counters(self, reg):
        reg.inc("work", 10)
        before = reg.export()
        reg.inc("work", 3)
        reg.inc("new", 1)
        delta = reg.delta(before)
        assert delta["counters"] == {"work": 3, "new": 1}

    def test_delta_gauges_ship_when_changed(self, reg):
        reg.observe("same", 1)
        reg.observe("changed", 1)
        before = reg.export()
        reg.observe("changed", 2)
        delta = reg.delta(before)
        assert delta["gauges"] == {"changed": 2}

    def test_install_sums_counters_overwrites_gauges(self, reg):
        reg.inc("work", 5)
        reg.observe("depth", 1)
        reg.install({"counters": {"work": 2}, "gauges": {"depth": 9}})
        assert reg.get("work") == 7
        assert reg.get("depth") == 9

    def test_roundtrip_matches_sequential(self):
        # Parent does some work, forks, child does more; merging the
        # child's delta must equal having done it all in one process.
        sequential = MetricsRegistry()
        sequential.inc("steps", 4)
        sequential.inc("steps", 6)

        parent = MetricsRegistry()
        parent.inc("steps", 4)
        child_view = MetricsRegistry()
        child_view.install(parent.export())  # fork inherits
        before = child_view.export()
        child_view.inc("steps", 6)
        parent.install(child_view.delta(before))
        assert parent.snapshot() == sequential.snapshot()


class TestGlobalRegistry:
    def test_sim_cache_source_registered(self):
        snap = METRICS.snapshot()
        assert "sim_cache.hits" in snap
        assert "spans.recorded" in snap

    def test_snapshot_determinism_across_equal_runs(self):
        """Equal-seed runs produce identical explicit counters.

        The registry's own counters are derived from what was computed
        (steps, replays, fallbacks), never from wall-clock — so two
        identical simulations increment identically.
        """
        from repro.algorithms.matmul import cannon
        from repro.bench.weak_scaling import square_grid
        from repro.machine.cluster import Cluster
        from repro.machine.grid import Grid
        from repro.machine.machine import Machine
        from repro.sim.params import LASSEN

        def run():
            before = METRICS.export()["counters"]
            cluster = Cluster.cpu_cluster(4)
            machine = Machine(
                cluster, Grid(*square_grid(cluster.num_processors))
            )
            cannon(machine, 512).simulate(LASSEN)
            after = METRICS.export()["counters"]
            return {
                k: after.get(k, 0) - before.get(k, 0)
                for k in after
                if after.get(k, 0) != before.get(k, 0)
            }

        first = run()
        second = run()
        assert first == second
        assert first.get("orbit.runs") == 1
        assert first.get("orbit.steps", 0) > 0

    def test_equal_seed_ledgers_byte_identical_with_obs_on(self, tmp_path):
        """Tuning ledgers stay byte-deterministic with the full
        observability layer live (metrics always on, tracing forced).

        The ledger's embedded oracle stats are derived from phase
        fingerprints, not cache or counter state — instrumentation must
        not leak wall-clock-dependent values into it.
        """
        from repro.bench.cache import SIM_CACHE
        from repro.machine.cluster import Cluster
        from repro.obs.spans import reset_spans, set_tracing
        from repro.tuner.oracle import SKELETONS
        from repro.tuner.search import tune
        from repro.tuner.workloads import matmul

        def run(path):
            SIM_CACHE.clear()
            SKELETONS.clear()
            tune(
                matmul(2048), Cluster.cpu_cluster(4), jobs=1, seed=7,
                ledger_path=path,
            )
            return path.read_bytes()

        set_tracing(True)
        try:
            first = run(tmp_path / "a.json")
            second = run(tmp_path / "b.json")
        finally:
            set_tracing(None)
            reset_spans()
        assert first == second
