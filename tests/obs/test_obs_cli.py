"""The ``python -m repro.obs`` CLI: list, diff, export, demo."""

import json

import pytest

from repro.bench.perf_log import append_record
from repro.obs.__main__ import main
from repro.obs.spans import reset_spans, set_tracing


@pytest.fixture(autouse=True)
def clean_tracing():
    yield
    set_tracing(None)
    reset_spans()


@pytest.fixture
def perf_log(tmp_path, monkeypatch):
    log = tmp_path / "BENCH_simulator.json"
    monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
    return log


class TestList:
    def test_empty_log(self, perf_log, capsys):
        assert main(["list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_lists_records_with_counter_mark(self, perf_log, capsys):
        append_record("cli:ttv", 1.25)
        append_record("tune:matmul", 3.5, counters={"orbit.runs": 4})
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cli:ttv" in out
        assert "tune:matmul" in out
        assert "[1 counters]" in out


class TestDiff:
    def test_needs_two_records(self, perf_log, capsys):
        append_record("tune:matmul", 1.0, counters={"a": 1})
        assert main(["diff", "tune:matmul"]) == 1
        assert "need two" in capsys.readouterr().out

    def test_diffs_counters(self, perf_log, capsys):
        append_record("tune:matmul", 1.0,
                      counters={"oracle.simulated": 10, "same": 5})
        append_record("tune:matmul", 0.8,
                      counters={"oracle.simulated": 4, "same": 5})
        assert main(["diff", "tune:matmul"]) == 0
        out = capsys.readouterr().out
        assert "10 -> 4" in out
        assert "same" in out

    def test_diff_two_names(self, perf_log, capsys):
        append_record("a", 1.0, counters={"x": 1})
        append_record("b", 1.0, counters={"x": 2})
        assert main(["diff", "a", "b"]) == 0
        assert "1 -> 2" in capsys.readouterr().out

    def test_missing_name(self, perf_log, capsys):
        assert main(["diff", "nope"]) == 1


class TestExport:
    def test_exports_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "export", "--workload", "cannon", "--nodes", "4",
            "--size", "256", "--out", str(out),
        ]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"]
        assert "phases" in capsys.readouterr().out

    def test_demo_flag(self, tmp_path, capsys):
        out = tmp_path / "demo.json"
        assert main(["--demo", "--out", str(out)]) == 0
        assert "demo trace OK" in capsys.readouterr().out
        trace = json.loads(out.read_text())
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert "span" in cats  # wall-clock lanes merged in
