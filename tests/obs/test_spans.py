"""Span tracing: gating, nesting, fork-envelope merging, profiles."""

import os
import threading

import pytest

from repro.obs import spans
from repro.obs.spans import (
    SpanRecord,
    dropped_spans,
    export_spans,
    flat_profile,
    format_profile,
    install_spans,
    reset_spans,
    set_tracing,
    span,
    span_mark,
    span_records,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def clean_spans():
    set_tracing(None)
    reset_spans()
    yield
    set_tracing(None)
    reset_spans()


class TestGating:
    def test_disabled_by_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        set_tracing(None)
        assert tracing_enabled() is False

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        set_tracing(None)
        assert tracing_enabled() is True

    def test_disabled_span_is_shared_noop(self):
        set_tracing(False)
        a = span("x")
        b = span("y")
        assert a is b  # one shared singleton: no per-call allocation
        with a:
            pass
        assert span_records() == []

    def test_enabled_span_records(self):
        set_tracing(True)
        with span("work"):
            pass
        records = span_records()
        assert len(records) == 1
        rec = records[0]
        assert rec.name == "work"
        assert rec.pid == os.getpid()
        assert rec.tid == threading.get_ident()
        assert rec.dur_s >= 0
        assert rec.depth == 0


class TestNesting:
    def test_child_attributes_self_time(self):
        set_tracing(True)
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r.name: r for r in span_records()}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        # Outer self-time excludes the inner span's duration.
        outer = by_name["outer"]
        inner = by_name["inner"]
        assert outer.self_s <= outer.dur_s
        assert outer.self_s == pytest.approx(
            outer.dur_s - inner.dur_s, abs=1e-9
        )

    def test_exception_still_records(self):
        set_tracing(True)
        with pytest.raises(ValueError):
            with span("raises"):
                raise ValueError("boom")
        assert [r.name for r in span_records()] == ["raises"]
        # The thread-local stack unwound: a new span lands at depth 0.
        with span("after"):
            pass
        assert span_records()[-1].depth == 0


class TestForkEnvelope:
    def test_mark_and_export_ship_only_new_records(self):
        set_tracing(True)
        with span("before"):
            pass
        mark = span_mark()
        with span("after"):
            pass
        shipped = export_spans(since=mark)
        assert [r.name for r in shipped] == ["after"]

    def test_install_merges(self):
        set_tracing(True)
        foreign = [SpanRecord(
            name="worker.span", pid=99999, tid=1, start_s=0.0,
            dur_s=0.5, self_s=0.5, depth=0,
        )]
        install_spans(foreign)
        assert span_records()[-1].name == "worker.span"
        assert span_records()[-1].pid == 99999

    def test_install_respects_cap(self, monkeypatch):
        monkeypatch.setattr(spans, "MAX_RECORDS", 2)
        rec = SpanRecord(
            name="x", pid=1, tid=1, start_s=0.0, dur_s=0.0,
            self_s=0.0, depth=0,
        )
        install_spans([rec, rec, rec])
        assert len(span_records()) == 2
        assert dropped_spans() == 1

    def test_record_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr(spans, "MAX_RECORDS", 1)
        set_tracing(True)
        with span("kept"):
            pass
        with span("dropped"):
            pass
        assert [r.name for r in span_records()] == ["kept"]
        assert dropped_spans() == 1


class TestProfile:
    def test_flat_profile_aggregates(self):
        set_tracing(True)
        for _ in range(3):
            with span("hot"):
                pass
        with span("cold"):
            pass
        prof = flat_profile()
        assert prof["hot"][0] == 3
        assert prof["cold"][0] == 1
        assert prof["hot"][1] >= prof["hot"][2]  # total >= self

    def test_format_profile_empty(self):
        assert "REPRO_TRACE" in format_profile()

    def test_format_profile_table(self):
        set_tracing(True)
        with span("visible"):
            pass
        table = format_profile()
        assert "visible" in table
        assert "calls" in table
