"""Joint pipeline tuning: the acceptance contract.

The headline claim (ISSUE 4): a format-aware *joint* schedule of the
``(A@B)@C`` chain at 256 nodes is strictly cheaper than independently
tuned stages with default handoff redistribution, because the joint
schedule eliminates a full redistribution of the intermediate.
"""

import pytest

from repro import LASSEN, Pipeline, tune_pipeline
from repro.machine.cluster import Cluster
from repro.tuner.workloads import lean_cluster, matmul_chain, ttmc


@pytest.fixture(scope="module")
def chain_256_result():
    """The acceptance configuration, tuned once per test session."""
    cluster = lean_cluster(256, mem_gib=1)
    pipeline = Pipeline(matmul_chain(32768, 512), cluster)
    return pipeline, tune_pipeline(
        pipeline,
        LASSEN,
        top_k=4,
        max_dims=2,
        coarse_procs=16,
    )


class TestChain256Acceptance:
    def test_joint_strictly_beats_independent(self, chain_256_result):
        _, result = chain_256_result
        assert result.report is not None
        assert result.independent_report is not None
        assert (
            result.report.combined.total_time
            < result.independent_report.combined.total_time
        )
        assert result.improved

    def test_joint_eliminates_the_redistribution(self, chain_256_result):
        _, result = chain_256_result
        # Independently tuned stages disagree on T's layout and pay a
        # real redistribution; the joint schedule hands T off for free.
        assert result.independent_report.redistribution_time > 0
        assert result.independent_report.redistribution_bytes > 0
        assert result.report.redistribution_time == 0.0
        assert result.report.redistribution_bytes == 0.0

    def test_joint_handoff_formats_match(self, chain_256_result):
        from repro.core.transfer import formats_equivalent

        pipeline, result = chain_256_result
        for edge in pipeline.edges:
            src, src_m, dst, dst_m = result.plan.handoff_formats(edge)
            assert formats_equivalent(src, src_m, dst, dst_m)

    def test_independent_combo_is_in_the_joint_space(self, chain_256_result):
        """Joint tuning can never lose to independent tuning: the
        independent combination is part of its enumeration."""
        _, result = chain_256_result
        assert (
            result.report.combined.total_time
            <= result.independent_report.combined.total_time
        )


class TestJointSmall:
    def test_ttmc_joint_never_worse(self):
        cluster = Cluster.cpu_cluster(2)
        pipeline = Pipeline(ttmc(128, 16), cluster)
        result = tune_pipeline(pipeline, LASSEN, top_k=3)
        assert result.report is not None
        assert (
            result.report.combined.total_time
            <= result.independent_report.combined.total_time
        )

    def test_deterministic(self):
        cluster = Cluster.cpu_cluster(2)
        first = tune_pipeline(
            Pipeline(matmul_chain(1024, 256), cluster), LASSEN, top_k=3
        )
        second = tune_pipeline(
            Pipeline(matmul_chain(1024, 256), cluster), LASSEN, top_k=3
        )
        assert {
            name: d.encode() for name, d in first.decisions.items()
        } == {
            name: d.encode() for name, d in second.decisions.items()
        }
        assert first.handoffs == second.handoffs
        assert (
            first.report.combined.total_time
            == second.report.combined.total_time
        )
