"""Parity contracts: single-stage pipelines and the handoff planner.

* ``Pipeline.simulate()`` on a single-stage pipeline is byte-identical
  to ``Kernel.simulate()`` on the same compiled kernel;
* a matched producer/consumer format emits zero redistribution
  ``Copy``s;
* the direct redistribution planner moves exactly the bytes the
  compiled transfer kernel (``core/transfer.py``) moves, whenever both
  apply (same machine grid).
"""

import pytest

from repro import (
    Format,
    Grid,
    LASSEN,
    Machine,
    Pipeline,
    TensorVar,
    redistribution_bytes,
)
from repro.core.transfer import formats_equivalent, redistribution_trace
from repro.machine.cluster import Cluster
from repro.tuner.space import Decision, normalize
from repro.tuner.workloads import matmul, matmul_chain


@pytest.fixture
def cluster():
    return Cluster.cpu_cluster(8)


def chain_decisions(pipe, grid_t=(2, 2), grid_d=(2, 2), tiled=("T",)):
    return {
        "T": normalize(
            pipe.stage("T").assignment,
            Decision(grid=grid_t, dist=("i", "j")),
        ),
        "D": normalize(
            pipe.stage("D").assignment,
            Decision(grid=grid_d, dist=("i", "l"), tiled=tiled),
        ),
    }


class TestSingleStageParity:
    @pytest.mark.parametrize("mode", ["orbit", "batched"])
    def test_byte_identical_to_kernel_simulate(self, mode):
        cluster = Cluster.cpu_cluster(4)
        pipe = Pipeline([matmul(2048)], cluster)
        plan = pipe.autoschedule()
        combined = plan.simulate(LASSEN, mode=mode).combined
        reference = plan.stages[0].kernel.simulate(LASSEN, mode=mode)
        assert combined == reference  # dataclass equality: every field

    def test_single_stage_report_has_no_edges(self):
        cluster = Cluster.cpu_cluster(4)
        plan = Pipeline([matmul(1024)], cluster).autoschedule()
        report = plan.simulate()
        assert report.edges == []
        assert report.redistribution_time == 0.0
        assert report.redistribution_bytes == 0.0


class TestMatchedHandoff:
    def test_matched_formats_emit_zero_copies(self, cluster):
        """Stage D tiles T over the same (2, 2) grid stage T writes it
        on — the handoff is matched and plans no traffic at all."""
        pipe = Pipeline(matmul_chain(512), cluster)
        plan = pipe.schedule_with(chain_decisions(pipe))
        src, src_m, dst, dst_m = plan.handoff_formats(pipe.edges[0])
        assert formats_equivalent(src, src_m, dst, dst_m)
        report = plan.simulate()
        assert report.edges[0].matched
        assert report.redistribution_bytes == 0.0
        assert report.redistribution_time == 0.0
        # The planner agrees: byte-for-byte nothing moves.
        T = plan.stage("D").tensor("T")
        trace = redistribution_trace(T, src, src_m, dst, dst_m)
        assert trace.copies == []
        # And the combined report is exactly the sum of the stages.
        assert report.combined.total_time == pytest.approx(
            sum(s.report.total_time for s in report.stages)
        )

    def test_mismatched_formats_plan_traffic(self, cluster):
        pipe = Pipeline(matmul_chain(512), cluster)
        decisions = chain_decisions(pipe, tiled=())  # D pulls T replicas
        plan = pipe.schedule_with(decisions)
        report = plan.simulate()
        assert not report.edges[0].matched
        assert report.redistribution_bytes > 0
        assert report.combined.total_time == pytest.approx(
            report.stage_time + report.redistribution_time
        )

    def test_direct_handoff_is_always_matched(self, cluster):
        pipe = Pipeline(matmul_chain(512), cluster)
        decisions = chain_decisions(pipe, tiled=())
        plan = pipe.schedule_with(decisions, handoffs={"T": "direct"})
        report = plan.simulate()
        assert report.edges[0].matched
        assert report.redistribution_bytes == 0.0


class TestPlannerTransferParity:
    @pytest.mark.parametrize("grid,src_fmt,dst_fmt", [
        ((4, 4), "ab -> ab", "ab -> ba"),
        ((4, 4), "ab -> a*", "ab -> ab"),
        ((4, 4), "ab -> *b", "ab -> ab"),
        ((16,), "ab -> a", "ab -> b"),
    ])
    def test_same_grid_bytes_match_transfer_kernel(
        self, cluster, grid, src_fmt, dst_fmt
    ):
        machine = Machine(cluster, Grid(*grid))
        src = Format(src_fmt)
        dst = Format(dst_fmt)
        T = TensorVar("T", (512, 512), src)
        planned = redistribution_trace(T, src, machine, dst, machine)
        reference = redistribution_bytes(T, dst, machine)
        assert planned.total_copy_bytes == reference

    def test_replicated_destination_counts_full_fanout(self, cluster):
        """A pull-replicated consumer layout needs the data at *every*
        replica holder — the planner charges the whole fan-out (unlike
        the compiled identity kernel, which writes one output copy and
        leaves replicas to materialize lazily on use)."""
        machine = Machine(cluster, Grid(4, 4))
        T = TensorVar("T", (512, 512))
        trace = redistribution_trace(
            T, Format("ab -> ab"), machine, Format("ab -> a*"), machine
        )
        # Each of the 16 holders needs its 4-tile row block; the tile
        # at its own coordinate is already local.
        assert trace.total_copy_bytes == 3 * T.nbytes

    def test_cross_grid_redistribution_is_conservative(self, cluster):
        """Across grids the transfer kernel cannot be compiled; the
        planner still moves at most one full copy of the tensor."""
        src_m = Machine(cluster, Grid(4, 4))
        dst_m = Machine(cluster, Grid(2, 8))
        fmt = Format("ab -> ab")
        T = TensorVar("T", (512, 512))
        trace = redistribution_trace(T, fmt, src_m, fmt, dst_m)
        assert 0 < trace.total_copy_bytes <= T.nbytes
        # Re-tiling (4,4) -> (2,8) keeps every row-block of 128 rows on
        # a node boundary subset: some pieces stay local.
        assert trace.total_copy_bytes < T.nbytes

    def test_same_shape_different_levels_not_equivalent(self):
        """A flat ``Grid(2, 4)`` and a hierarchical ``Grid(2) x Grid(4)``
        concatenate to the same shape but place grid points on different
        processors (row-major over all procs vs. nodes-then-local)."""
        small = Cluster.cpu_cluster(num_nodes=2, sockets_per_node=4)
        flat = Machine(small, Grid(4, 2))
        nested = Machine(small, Grid(4), Grid(2))
        assert flat.shape == nested.shape
        # Point (1, 0): row-major over all procs lands on node 0's third
        # socket, the hierarchical outer level wraps onto node 1.
        assert flat.proc_at((1, 0)) is not nested.proc_at((1, 0))
        fmt = Format("ab -> ab")
        assert not formats_equivalent(fmt, flat, fmt, nested)
        assert formats_equivalent(fmt, nested, fmt, nested)

    def test_memory_kind_change_is_a_real_transfer(self):
        from repro.machine.cluster import MemoryKind

        gpu = Cluster.gpu_cluster(4)
        machine = Machine(gpu, Grid(4, 4))
        sys_fmt = Format("ab -> ab", memory=MemoryKind.SYSTEM_MEM)
        fb_fmt = Format("ab -> ab", memory=MemoryKind.GPU_FB)
        assert not formats_equivalent(sys_fmt, machine, fb_fmt, machine)
        T = TensorVar("T", (512, 512))
        trace = redistribution_trace(T, sys_fmt, machine, fb_fmt, machine)
        # Same blocking: every piece crosses PCIe but stays on its node.
        assert trace.total_copy_bytes == T.nbytes
        assert trace.inter_node_bytes == 0
