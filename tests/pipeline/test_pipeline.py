"""Pipeline DAG construction, validation, and scheduling."""

import pytest

from repro import Pipeline, PipelineError, Stage, TensorVar, index_vars
from repro.ir.tensor import Assignment
from repro.machine.cluster import Cluster
from repro.tuner.space import Decision, normalize
from repro.tuner.workloads import matmul, matmul_chain, ttmc


@pytest.fixture
def cluster():
    return Cluster.cpu_cluster(2)


class TestConstruction:
    def test_stages_named_after_outputs(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        assert [s.name for s in pipe.stages] == ["T", "D"]
        assert pipe.intermediates == ("T",)
        assert pipe.external_inputs == ("A", "B", "C")

    def test_edges_connect_producer_to_consumer(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        assert len(pipe.edges) == 1
        edge = pipe.edges[0]
        assert (edge.tensor, edge.producer, edge.consumer) == ("T", "T", "D")
        assert pipe.consumers_of("T") == ["D"]

    def test_stages_sorted_topologically(self, cluster):
        stages = matmul_chain(256)
        pipe = Pipeline(list(reversed(stages)), cluster)
        assert [s.name for s in pipe.stages] == ["T", "D"]

    def test_named_stage_pairs(self, cluster):
        s1, s2 = matmul_chain(256)
        pipe = Pipeline([("first", s1), ("second", s2)], cluster)
        assert [s.name for s in pipe.stages] == ["first", "second"]
        assert pipe.stage("first").output == "T"

    def test_single_stage(self, cluster):
        pipe = Pipeline([matmul(256)], cluster)
        assert pipe.intermediates == ()
        assert pipe.edges == []

    def test_empty_rejected(self, cluster):
        with pytest.raises(PipelineError):
            Pipeline([], cluster)

    def test_duplicate_producer_rejected(self, cluster):
        s1, _ = matmul_chain(256)
        s1b, _ = matmul_chain(256)
        with pytest.raises(PipelineError, match="produced by both"):
            Pipeline([("x", s1), ("y", s1b)], cluster)

    def test_duplicate_stage_names_rejected(self, cluster):
        s1, s2 = matmul_chain(256)
        with pytest.raises(PipelineError, match="duplicate"):
            Pipeline([("x", s1), ("x", s2)], cluster)

    def test_cycle_rejected(self, cluster):
        # X reads Y's output and vice versa.
        X = TensorVar("X", (16, 16))
        Y = TensorVar("Y", (16, 16))
        i, j, k = index_vars("i j k")
        sx = Assignment(X[i, j], Y[i, k] * Y[k, j])
        sy = Assignment(Y[i, j], X[i, k] * X[k, j])
        with pytest.raises(PipelineError, match="cycle"):
            Pipeline([sx, sy], cluster)

    def test_self_read_rejected(self, cluster):
        X = TensorVar("X", (16, 16))
        i, j, k = index_vars("i j k")
        with pytest.raises(PipelineError, match="own output"):
            Stage("X", Assignment(X[i, j], X[i, k] * X[k, j]))

    def test_shape_mismatch_rejected(self, cluster):
        T1 = TensorVar("T", (16, 16))
        T2 = TensorVar("T", (32, 32))
        A = TensorVar("A", (16, 16))
        Z = TensorVar("Z", (32, 32))
        i, j, k = index_vars("i j k")
        s1 = Assignment(T1[i, j], A[i, k] * A[k, j])
        s2 = Assignment(Z[i, j], T2[i, k] * T2[k, j])
        with pytest.raises(PipelineError, match="in one stage"):
            Pipeline([s1, s2], cluster)


class TestScheduling:
    def test_missing_decision_rejected(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        d = normalize(
            pipe.stage("T").assignment,
            Decision(grid=(2, 2), dist=("i", "j")),
        )
        with pytest.raises(PipelineError, match="no decision"):
            pipe.schedule_with({"T": d})

    def test_unknown_handoff_tensor_rejected(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        plan_decisions = {
            "T": normalize(
                pipe.stage("T").assignment,
                Decision(grid=(2, 2), dist=("i", "j")),
            ),
            "D": normalize(
                pipe.stage("D").assignment,
                Decision(grid=(2, 2), dist=("i", "l")),
            ),
        }
        with pytest.raises(PipelineError, match="not an .*intermediate"):
            pipe.schedule_with(plan_decisions, handoffs={"A": "direct"})
        with pytest.raises(PipelineError, match="unknown handoff"):
            pipe.schedule_with(plan_decisions, handoffs={"T": "teleport"})

    def test_direct_handoff_needs_matching_grids(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        decisions = {
            "T": normalize(
                pipe.stage("T").assignment,
                Decision(grid=(2, 2), dist=("i", "j")),
            ),
            "D": normalize(
                pipe.stage("D").assignment,
                Decision(grid=(4,), dist=("i",)),
            ),
        }
        with pytest.raises(PipelineError, match="matching grids"):
            pipe.schedule_with(decisions, handoffs={"T": "direct"})

    def test_direct_handoff_propagates_producer_format(self, cluster):
        pipe = Pipeline(matmul_chain(256), cluster)
        decisions = {
            "T": normalize(
                pipe.stage("T").assignment,
                Decision(grid=(2, 2), dist=("i", "j")),
            ),
            "D": normalize(
                pipe.stage("D").assignment,
                Decision(grid=(2, 2), dist=("i", "l")),
            ),
        }
        plan = pipe.schedule_with(decisions, handoffs={"T": "direct"})
        src, src_m, dst, dst_m = plan.handoff_formats(pipe.edges[0])
        assert src.notation() == dst.notation()
        assert src_m.shape == dst_m.shape

    def test_autoschedule_compiles_every_stage(self, cluster):
        pipe = Pipeline(ttmc(64, 16), cluster)
        plan = pipe.autoschedule()
        assert len(plan.stages) == 2
        assert "stage" in plan.pretty()
        report = plan.simulate()
        assert report.combined.total_time > 0

    def test_schedule_does_not_mutate_shared_formats(self, cluster):
        """Stages own private assignment copies: compiling the consumer
        must not clobber the producer's realized formats."""
        pipe = Pipeline(matmul_chain(256), cluster)
        plan = pipe.autoschedule()
        producer = plan.stage("T")
        consumer = plan.stage("D")
        assert producer.tensor("T") is not consumer.tensor("T")
        # The producer's plan still sees its own output format.
        assert (
            producer.kernel.plan.tensors["T"].format.notation()
            == producer.formats["T"].notation()
        )
