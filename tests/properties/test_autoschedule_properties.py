"""Generality property: random einsums compile and run correctly.

The paper claims DISTAL creates "implementations of any dense tensor
algebra expression". Combined with the auto-scheduler, that becomes a
testable property: generate random tensor index notation statements,
schedule them automatically, execute them distributed, and compare to
the numpy oracle.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Assignment,
    Machine,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.core.autoschedule import auto_schedule
from repro.ir.expr import Access, Expr

VARS = index_vars("i j k l")
EXTENTS = {v: e for v, e in zip(VARS, (5, 6, 4, 3))}


@st.composite
def random_einsum(draw):
    """A random assignment: product(s) of random accesses."""
    n_out = draw(st.integers(0, 2))
    out_vars = draw(
        st.permutations(VARS).map(lambda p: list(p)[:n_out])
    )
    n_inputs = draw(st.integers(1, 3))
    accesses = []
    for idx in range(n_inputs):
        n_dims = draw(st.integers(1, 3))
        dims = draw(
            st.permutations(VARS).map(lambda p: list(p)[:n_dims])
        )
        shape = tuple(EXTENTS[v] for v in dims)
        tensor = TensorVar(f"T{idx}", shape)
        accesses.append(Access(tensor, tuple(dims)))
    rhs: Expr = accesses[0]
    for access in accesses[1:]:
        rhs = rhs * access
    # Optionally a second additive term reusing the first access.
    if draw(st.booleans()) and len(accesses) >= 2:
        rhs = rhs + accesses[0]
    out_shape = tuple(EXTENTS[v] for v in out_vars)
    out = TensorVar("OUT", out_shape)
    return Assignment(Access(out, tuple(out_vars)), rhs)


class TestRandomEinsums:
    @given(random_einsum(), st.sampled_from([(2, 2), (4,), (2, 2, 2)]))
    @settings(
        deadline=None,
        max_examples=60,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_auto_scheduled_execution_matches_oracle(self, stmt, grid):
        machine = Machine.flat(*grid)
        result = auto_schedule(stmt, machine)
        kern = compile_kernel(result.schedule, machine)
        rng = np.random.default_rng(0)
        inputs = {
            t.name: rng.random(t.shape)
            for t in stmt.tensors()
            if t.name != "OUT"
        }
        kern.execute(inputs, verify=True)
