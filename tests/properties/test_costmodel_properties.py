"""Property-based checks on the cost model.

Physical sanity: time is monotone in bytes, overlap never loses,
collectives never beat their own payloads, and the simulator is
deterministic.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Cluster, Machine
from repro.algorithms import summa
from repro.runtime.trace import Copy, Trace
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN
from repro.util.geometry import Interval, Rect

lax = settings(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_copies(cluster, spec):
    """spec: list of (src, dst, nbytes, reduce)."""
    out = []
    for idx, (src, dst, nbytes, reduce) in enumerate(spec):
        sp = cluster.processors[src % cluster.num_processors]
        dp = cluster.processors[dst % cluster.num_processors]
        if sp.proc_id == dp.proc_id:
            continue
        out.append(
            Copy(
                tensor=f"T{idx}",
                rect=Rect.of(Interval(0, max(nbytes // 8, 1))),
                nbytes=nbytes,
                src_proc=sp,
                dst_proc=dp,
                src_mem=sp.memory,
                dst_mem=dp.memory,
                reduce=reduce,
            )
        )
    return out


copy_spec = st.lists(
    st.tuples(
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(1_000, 100_000_000),
        st.booleans(),
    ),
    min_size=1,
    max_size=12,
)


class TestCommTimeProperties:
    @given(copy_spec)
    @lax
    def test_time_nonnegative_and_finite(self, spec):
        cluster = Cluster.cpu_cluster(8, sockets_per_node=1)
        model = CostModel(cluster, LASSEN)
        t = model.comm_time(make_copies(cluster, spec))
        assert t >= 0.0
        assert np.isfinite(t)

    @given(copy_spec, st.integers(2, 5))
    @lax
    def test_monotone_in_bytes(self, spec, factor):
        cluster = Cluster.cpu_cluster(8, sockets_per_node=1)
        model = CostModel(cluster, LASSEN)
        small = make_copies(cluster, spec)
        big = make_copies(
            cluster,
            [(s, d, n * factor, r) for s, d, n, r in spec],
        )
        assert model.comm_time(big) >= model.comm_time(small)

    @given(copy_spec)
    @lax
    def test_subset_never_slower(self, spec):
        cluster = Cluster.cpu_cluster(8, sockets_per_node=1)
        model = CostModel(cluster, LASSEN)
        full = make_copies(cluster, spec)
        half = full[: max(1, len(full) // 2)]
        assert model.comm_time(half) <= model.comm_time(full) + 1e-12

    @given(copy_spec)
    @lax
    def test_overlap_never_loses(self, spec):
        cluster = Cluster.cpu_cluster(8, sockets_per_node=1)
        trace = Trace()
        step = trace.new_step("s")
        step.copies.extend(make_copies(cluster, spec))
        step.work_for(cluster.processors[0]).add(1e10, 0, "blas_gemm", False)
        t_overlap = CostModel(cluster, LASSEN).time_trace(trace).total_time
        t_block = (
            CostModel(cluster, LASSEN.with_(overlap=False))
            .time_trace(trace)
            .total_time
        )
        assert t_overlap <= t_block + 1e-12


class TestDeterminism:
    def test_simulation_is_deterministic(self):
        m = Machine.flat(4, 2)
        reports = [summa(m, 4096).simulate(LASSEN) for _ in range(2)]
        assert reports[0].total_time == reports[1].total_time
        assert reports[0].total_copy_bytes == reports[1].total_copy_bytes

    def test_functional_and_symbolic_agree_on_traffic(self, rng):
        m = Machine.flat(3, 3)
        kern = summa(m, 18)
        f = kern.execute(
            {"B": rng.random((18, 18)), "C": rng.random((18, 18))}
        )
        s = kern.trace(check_capacity=False)
        assert f.trace.total_copy_bytes == s.trace.total_copy_bytes
