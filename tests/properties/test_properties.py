"""Property-based tests (hypothesis) on core invariants.

The central contract: **schedules affect performance, never
correctness** (Section 3.3). Random expressions, random distributions and
random schedules must all produce the einsum oracle's result.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.formats.distribution import Distribution
from repro.util.geometry import Interval, Rect, split_evenly

lax = settings(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestGeometryProperties:
    @given(
        st.integers(0, 200),
        st.integers(1, 20),
    )
    @lax
    def test_split_evenly_partitions(self, extent, pieces):
        """Blocked partitioning covers the domain exactly once."""
        covered = []
        for idx in range(pieces):
            piece = split_evenly(extent, pieces, idx)
            covered.extend(range(piece.lo, piece.hi))
        assert covered == list(range(extent))

    @given(
        st.integers(-50, 50), st.integers(-50, 50),
        st.integers(-50, 50), st.integers(-50, 50),
    )
    @lax
    def test_intersection_is_largest_common(self, a, b, c, d):
        x = Interval(a, a + abs(b))
        y = Interval(c, c + abs(d))
        inter = x.intersect(y)
        for v in range(-60, 120):
            in_both = x.contains_value(v) and y.contains_value(v)
            assert in_both == inter.contains_value(v)

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 8))
    @lax
    def test_minkowski_sum_sound(self, s1, s2, samples):
        x = Interval(0, s1)
        y = Interval(10, 10 + s2)
        total = x + y
        rng = np.random.default_rng(s1 * 31 + s2)
        for _ in range(samples):
            xv = int(rng.integers(x.lo, x.hi))
            yv = int(rng.integers(y.lo, y.hi))
            assert total.contains_value(xv + yv)


class TestDistributionProperties:
    @given(
        st.integers(1, 12),  # tensor rows
        st.integers(1, 12),  # tensor cols
        st.integers(1, 4),   # machine x
        st.integers(1, 4),   # machine y
        st.sampled_from(["xy -> xy", "xy -> x", "xy -> y"]),
    )
    @lax
    def test_partition_covers_tensor_exactly_once(
        self, rows, cols, mx, my, notation
    ):
        """Every tensor coordinate is owned by exactly one color."""
        dist = Distribution.parse(notation)
        mshape = (mx, my)[: dist.machine_ndim]
        full = Rect.full((rows, cols))
        seen = np.zeros((rows, cols), dtype=int)
        counted = set()
        for point in _points(mshape):
            rect = dist.owned_rect(point, full, mshape)
            if rect is None or rect.is_empty:
                continue
            key = tuple(rect.lo) + tuple(rect.hi)
            if key in counted:
                continue  # replicas of the same piece
            counted.add(key)
            seen[rect.as_slices()] += 1
        assert (seen == 1).all()

    @given(st.integers(1, 10), st.integers(1, 5), st.integers(0, 4))
    @lax
    def test_owner_covering_is_owner(self, extent, pieces, block):
        if block >= pieces:
            block = pieces - 1
        dist = Distribution.parse("x -> x")
        piece = split_evenly(extent, pieces, block)
        if piece.is_empty:
            return
        owners = dist.owners_covering(
            Rect.of(piece), Rect.full((extent,)), (pieces,)
        )
        assert owners == [(block,)]


def _points(shape):
    from itertools import product

    return product(*(range(d) for d in shape))


# ----------------------------------------------------------------------
# The big one: random schedules never change results.
# ----------------------------------------------------------------------

def _random_matmul_schedule(draw, n, grid):
    A = TensorVar("A", (n, n), Format("xy -> xy"))
    B = TensorVar("B", (n, n), Format("xy -> xy"))
    C = TensorVar("C", (n, n), Format("xy -> xy"))
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    io, ii, jo, ji = index_vars("io ii jo ji")
    sched = Schedule(stmt).distribute(
        [i, j], [io, jo], [ii, ji], Grid(*grid)
    )
    style = draw(st.sampled_from(["none", "split", "divide", "rotate"]))
    ko, ki, kos = index_vars("ko ki kos")
    comm_inputs_at = None
    if style == "split":
        chunk = draw(st.sampled_from([2, 3, n]))
        sched = sched.split(k, ko, ki, chunk).reorder([ko, ii, ji, ki])
        comm_inputs_at = ko
    elif style == "divide":
        sched = sched.divide(k, ko, ki, grid[0]).reorder([ko, ii, ji, ki])
        comm_inputs_at = ko
    elif style == "rotate":
        sched = (
            sched.divide(k, ko, ki, grid[0])
            .reorder([ko, ii, ji, ki])
            .rotate(ko, [io, jo], kos)
        )
        comm_inputs_at = kos
    if draw(st.booleans()):
        sched = sched.communicate(A, jo)
    if comm_inputs_at is not None and draw(st.booleans()):
        sched = sched.communicate([B, C], comm_inputs_at)
    return sched


class TestScheduleNeverChangesResults:
    @given(st.data())
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_matmul_schedules(self, data):
        draw = data.draw
        grid = draw(st.sampled_from([(2, 2), (3, 2), (2, 3), (3, 3)]))
        n = draw(st.sampled_from([6, 12, 13]))
        if n < max(grid):
            n = max(grid) * 2
        sched = _random_matmul_schedule(draw, n, grid)
        machine = Machine.flat(*grid)
        kern = compile_kernel(sched, machine)
        rng = np.random.default_rng(42)
        inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
        kern.execute(inputs, verify=True)

    @given(
        st.sampled_from([(2, 2), (4, 1), (1, 4)]),
        st.sampled_from([8, 9, 10]),
        st.sampled_from(["xy -> xy", "yx -> xy", "xy -> x*"]),
    )
    @lax
    def test_any_data_distribution_works(self, grid, n, notation):
        """Computation adapts to however the data is laid out."""
        fa = Format(notation)
        A = TensorVar("A", (n, n), fa)
        B = TensorVar("B", (n, n), fa)
        i, j = index_vars("i j")
        stmt = Assignment(A[i, j], B[i, j])
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = Schedule(stmt).distribute(
            [i, j], [io, jo], [ii, ji], Grid(*grid)
        )
        kern = compile_kernel(sched, Machine.flat(*grid))
        rng = np.random.default_rng(7)
        kern.execute({"B": rng.random((n, n))}, verify=True)
