"""Parity: the batched executor reproduces the scalar trace exactly.

The batched fast path groups same-phase fetch requests and vectorizes
bounds analysis; these tests pin it to the seed's per-context reference
interpreter (``batched=False``) — same copies (in the same order), same
per-processor work, same memory high-water marks — on every case-study
schedule of Figure 9 plus hierarchical and higher-order plans.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.higher_order import mttkrp, ttv
from repro.algorithms.matmul import cannon, johnson, pumma, solomonik, summa
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.runtime.executor import Executor


def copy_record(c):
    return (
        c.tensor,
        c.rect,
        c.nbytes,
        c.src_proc.proc_id,
        c.dst_proc.proc_id,
        c.src_mem.name,
        c.dst_mem.name,
        c.src_coords,
        c.dst_coords,
        c.reduce,
    )


def work_record(work):
    return (
        work.flops,
        work.bytes_touched,
        work.staged_bytes,
        work.kernel,
        work.parallel,
        work.invocations,
        sorted(work.kernel_flops.items(), key=repr),
    )


def assert_identical_traces(plan):
    batched = Executor(
        plan, materialize=False, check_capacity=False, batched=True
    ).run()
    scalar = Executor(
        plan, materialize=False, check_capacity=False, batched=False
    ).run()
    t1, t2 = batched.trace, scalar.trace
    assert len(t1.steps) == len(t2.steps)
    for s1, s2 in zip(t1.steps, t2.steps):
        assert s1.label == s2.label
        # Byte-for-byte identical copy batch, including emission order.
        assert [copy_record(c) for c in s1.copies] == [
            copy_record(c) for c in s2.copies
        ]
        assert set(s1.work) == set(s2.work)
        for proc_id in s1.work:
            assert work_record(s1.work[proc_id]) == work_record(
                s2.work[proc_id]
            )
    assert batched.memory_high_water == scalar.memory_high_water


CPU32 = Cluster.cpu_cluster(8)  # 16 processors


class TestFig9Parity:
    """The Figure 9 case-study schedules, batched vs scalar."""

    @pytest.mark.parametrize("n", [255, 256, 300])
    def test_cannon(self, n):
        m = Machine(CPU32, Grid(4, 4))
        assert_identical_traces(cannon(m, n).plan)

    @pytest.mark.parametrize("n", [255, 256, 300])
    def test_summa(self, n):
        m = Machine(CPU32, Grid(4, 4))
        assert_identical_traces(summa(m, n).plan)

    def test_pumma(self):
        m = Machine(CPU32, Grid(4, 4))
        assert_identical_traces(pumma(m, 288).plan)

    @pytest.mark.parametrize("n", [128, 200])
    def test_johnson(self, n):
        m = Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))
        assert_identical_traces(johnson(m, n).plan)

    def test_solomonik(self):
        m = Machine(CPU32, Grid(2, 2, 2))
        assert_identical_traces(solomonik(m, 256).plan)


class TestMorePlans:
    def test_rectangular_grid(self):
        m = Machine(Cluster.cpu_cluster(4), Grid(8, 1))
        assert_identical_traces(summa(m, 192).plan)

    def test_hierarchical_gpu_machine(self):
        cluster = Cluster.gpu_cluster(4, gpus_per_node=4)
        m = Machine(cluster, Grid(4, 4))
        assert_identical_traces(
            cannon(m, 512, memory=MemoryKind.GPU_FB).plan
        )

    def test_ttv(self):
        m = Machine(CPU32, Grid(4, 4))
        assert_identical_traces(ttv(m, 96).plan)

    def test_mttkrp(self):
        m = Machine(CPU32, Grid(4, 2, 2))
        assert_identical_traces(mttkrp(m, 64, r=16).plan)


class TestParityProperties:
    """Problem sizes are adversarial: ragged tiles, empty edge blocks."""

    @settings(
        deadline=None,
        max_examples=12,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n=st.integers(17, 400))
    def test_cannon_any_size(self, n):
        m = Machine(Cluster.cpu_cluster(2), Grid(2, 2))
        assert_identical_traces(cannon(m, n).plan)

    @settings(
        deadline=None,
        max_examples=12,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n=st.integers(17, 400))
    def test_summa_any_size(self, n):
        m = Machine(Cluster.cpu_cluster(2), Grid(2, 2))
        assert_identical_traces(summa(m, n).plan)

    @settings(
        deadline=None,
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n=st.integers(9, 200))
    def test_johnson_any_size(self, n):
        m = Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))
        assert_identical_traces(johnson(m, n).plan)
