"""Communication semantics tests: Figures 7, 8 and 12 of the paper.

The running example is the paper's own: ``forall i forall j a(i) += b(j)``
with a and b block-distributed over a 1-D machine of 3 processors.
"""

import numpy as np

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)


def running_example(n=9, procs=3):
    """The paper's a(i) = sum_j b(j) example, distributed over i."""
    f = Format("x -> x")
    a = TensorVar("a", (n,), f)
    b = TensorVar("b", (n,), f)
    i, j = index_vars("i j")
    stmt = Assignment(a[i], b[j])
    machine = Machine.flat(procs)
    return stmt, (a, b), (i, j), machine


class TestNaiveCompletion:
    """Figure 7a: with no communicate command, fetches happen at the
    innermost variable, element by element."""

    def test_runs_and_verifies(self, rng):
        stmt, (a, b), (i, j), machine = running_example()
        io, ii = index_vars("io ii")
        sched = Schedule(stmt).distribute([i], [io], [ii], Grid(3))
        kern = compile_kernel(sched, machine)
        data = rng.random(9)
        res = kern.execute({"b": data}, verify=True)
        np.testing.assert_allclose(
            res.outputs["a"], np.full(9, data.sum())
        )

    def test_default_fetches_whole_b_per_task(self, rng):
        # Without a communicate command the j loop folds into the leaf,
        # so each task fetches all of b it needs in one block.
        stmt, (a, b), (i, j), machine = running_example()
        io, ii = index_vars("io ii")
        sched = Schedule(stmt).distribute([i], [io], [ii], Grid(3))
        kern = compile_kernel(sched, machine)
        res = kern.execute({"b": rng.random(9)})
        b_copies = [c for c in res.trace.copies if c.tensor == "b"]
        # Each of the 3 tasks owns 3 of 9 elements and fetches the rest
        # as one bounding block (6 elements do not fit one rect, so the
        # bounding rect is all 9 minus... the fetched rect covers b).
        assert all(c.nbytes >= 3 * 8 for c in b_copies)


class TestAggregatedCommunication:
    """Figure 7b: communicate(b, i-level) aggregates the fetches."""

    def test_aggregation_reduces_messages(self, rng):
        stmt, (a, b), (i, j), machine = running_example()
        io, ii = index_vars("io ii")
        jo, ji = index_vars("jo ji")

        # Naive: communicate b at the inner j loop (one fetch per chunk).
        sched_naive = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .split(j, jo, ji, 3)
            .reorder([jo, ii, ji])
            .communicate(b, jo)
        )
        kern_naive = compile_kernel(sched_naive, machine)
        res_naive = kern_naive.execute({"b": rng.random(9)}, verify=False)

        # Aggregated: communicate b at the task level.
        sched_agg = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .communicate(b, io)
        )
        kern_agg = compile_kernel(sched_agg, machine)
        res_agg = kern_agg.execute({"b": rng.random(9)}, verify=False)

        # Aggregation does not change total bytes moved, it batches them
        # into fewer synchronization phases (Figure 7's tradeoff).
        bytes_naive = sum(
            c.nbytes for c in res_naive.trace.copies if c.tensor == "b"
        )
        bytes_agg = sum(
            c.nbytes for c in res_agg.trace.copies if c.tensor == "b"
        )
        assert bytes_agg == bytes_naive
        phases_naive = sum(
            1
            for s in res_naive.trace.steps
            if any(c.tensor == "b" for c in s.copies)
        )
        phases_agg = sum(
            1
            for s in res_agg.trace.steps
            if any(c.tensor == "b" for c in s.copies)
        )
        assert phases_agg < phases_naive

    def test_memory_vs_messages_tradeoff(self, rng):
        # Aggregation trades memory for fewer messages (Section 3.3).
        stmt, (a, b), (i, j), machine = running_example()
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched_chunked = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .split(j, jo, ji, 3)
            .reorder([jo, ii, ji])
            .communicate(b, jo)
        )
        chunked = compile_kernel(sched_chunked, machine).execute(
            {"b": rng.random(9)}
        )
        sched_agg = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .communicate(b, io)
        )
        agg = compile_kernel(sched_agg, machine).execute(
            {"b": rng.random(9)}
        )
        hw_chunked = max(chunked.memory_high_water.values())
        hw_agg = max(agg.memory_high_water.values())
        assert hw_agg >= hw_chunked


class TestRotation:
    """Figure 8: rotate turns simultaneous access into a systolic shift."""

    def _comm_pattern(self, use_rotate: bool, rng):
        stmt, (a, b), (i, j), machine = running_example()
        io, ii, jo, ji, jos = index_vars("io ii jo ji jos")
        sched = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .divide(j, jo, ji, 3)
            .reorder([jo, ii, ji])
        )
        if use_rotate:
            sched = sched.rotate(jo, [io], jos).communicate(b, jos)
        else:
            sched = sched.communicate(b, jo)
        kern = compile_kernel(sched, machine)
        res = kern.execute({"b": rng.random(9)}, verify=True)
        return res.trace

    def test_without_rotate_all_fetch_same_chunk(self, rng):
        trace = self._comm_pattern(False, rng)
        # Figure 8a: at each step every processor wants the same chunk,
        # and its owner broadcasts it (fan-out 2 per step).
        for step in trace.steps:
            srcs = {c.src_coords for c in step.copies if c.tensor == "b"}
            if step.copies:
                assert len(srcs) == 1

    def test_with_rotate_shifts_are_nearest_neighbor(self, rng):
        trace = self._comm_pattern(True, rng)
        machine = Machine.flat(3)
        for step in trace.steps:
            for copy in step.copies:
                if copy.tensor != "b":
                    continue
                dist = machine.torus_distance(
                    copy.src_coords, copy.dst_coords
                )
                assert dist <= 1

    def test_rotate_does_not_change_results(self, rng):
        data = rng.random(9)
        stmt, (a, b), (i, j), machine = running_example()
        io, ii, jo, ji, jos = index_vars("io ii jo ji jos")
        plain = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .divide(j, jo, ji, 3)
            .reorder([jo, ii, ji])
            .communicate(b, jo)
        )
        rotated = (
            Schedule(stmt)
            .distribute([i], [io], [ii], Grid(3))
            .divide(j, jo, ji, 3)
            .reorder([jo, ii, ji])
            .rotate(jo, [io], jos)
            .communicate(b, jos)
        )
        m1 = Machine.flat(3)
        m2 = Machine.flat(3)
        out_plain = compile_kernel(plain, m1).execute({"b": data}).outputs["a"]
        out_rot = compile_kernel(rotated, m2).execute({"b": data}).outputs["a"]
        np.testing.assert_allclose(out_plain, out_rot)


class TestReductions:
    def test_distributed_reduction_writes_back(self, rng):
        # Distribute the reduction variable: partials must reduce to the
        # owner of a.
        n = 8
        a = TensorVar("a", (n,), Format())  # undistributed: origin owns
        b = TensorVar("b", (n, n), Format("xy -> x"))
        i, j = index_vars("i j")
        stmt = Assignment(a[i], b[j, i])
        machine = Machine.flat(4)
        jo, ji = index_vars("jo ji")
        sched = (
            Schedule(stmt)
            .reorder([j, i])
            .distribute([j], [jo], [ji], Grid(4))
        )
        kern = compile_kernel(sched, machine)
        data = rng.random((n, n))
        res = kern.execute({"b": data}, verify=True)
        reduces = [c for c in res.trace.copies if c.reduce]
        # 3 non-owner processors reduce their partial a into the origin.
        assert len(reduces) == 3
