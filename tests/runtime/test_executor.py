"""Executor tests: functional correctness across schedule shapes."""

import pytest

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)


def run(stmt, sched_fn, machine, inputs, **kw):
    sched = sched_fn(Schedule(stmt))
    kern = compile_kernel(sched, machine)
    return kern.execute(inputs, verify=True, **kw)


class TestFunctionalShapes:
    def test_unscheduled_runs_on_origin(self, rng):
        A = TensorVar("A", (6, 6))
        B = TensorVar("B", (6, 6))
        i, j = index_vars("i j")
        stmt = Assignment(A[i, j], B[i, j])
        res = run(stmt, lambda s: s, Machine.flat(2), {"B": rng.random((6, 6))})
        assert res.trace.total_flops > 0

    def test_elementwise_add(self, rng):
        f = Format("xy -> xy")
        A = TensorVar("A", (8, 8), f)
        B = TensorVar("B", (8, 8), f)
        C = TensorVar("C", (8, 8), f)
        i, j = index_vars("i j")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, j] + C[i, j])
        res = run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(2, 2)),
            Machine.flat(2, 2),
            {"B": rng.random((8, 8)), "C": rng.random((8, 8))},
        )
        # Matching distributions: zero communication.
        assert res.trace.total_copy_bytes == 0

    def test_non_divisible_extents(self, rng):
        # 7 does not divide by a 2x2 grid: ragged tiles must still work.
        f = Format("xy -> xy")
        A = TensorVar("A", (7, 5), f)
        B = TensorVar("B", (7, 9), f)
        C = TensorVar("C", (9, 5), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(2, 2)),
            Machine.flat(2, 2),
            {"B": rng.random((7, 9)), "C": rng.random((9, 5))},
        )

    def test_rectangular_matmul(self, rng):
        f = Format("xy -> xy")
        A = TensorVar("A", (6, 10), f)
        B = TensorVar("B", (6, 4), f)
        C = TensorVar("C", (4, 10), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(3, 2)),
            Machine.flat(3, 2),
            {"B": rng.random((6, 4)), "C": rng.random((4, 10))},
        )

    def test_mismatched_data_and_compute_distribution(self, rng):
        # Data tiled 2x2 but computation distributed row-wise over 4:
        # the runtime must redistribute transparently (schedules never
        # affect correctness).
        A = TensorVar("A", (8, 8), Format("xy -> x"))
        i, j = index_vars("i j")
        io, ii = index_vars("io ii")
        machine4 = Machine.flat(4)

        B2 = TensorVar("B", (8, 8), Format("xy -> y"))
        stmt2 = Assignment(A[i, j], B2[i, j])
        res = run(
            stmt2,
            lambda s: s.distribute([i], [io], [ii], Grid(4)),
            machine4,
            {"B": rng.random((8, 8))},
        )
        # Row-compute over column-distributed B forces redistribution.
        assert res.trace.total_copy_bytes > 0

    def test_accumulate_into_output(self, rng):
        # Multiple terms: A = B*C + B means two einsum terms per leaf.
        f = Format("xy -> xy")
        A = TensorVar("A", (8, 8), f)
        B = TensorVar("B", (8, 8), f)
        C = TensorVar("C", (8, 8), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j] + B[i, j])
        run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(2, 2)),
            Machine.flat(2, 2),
            {"B": rng.random((8, 8)), "C": rng.random((8, 8))},
        )


class TestTraceShape:
    def test_work_recorded_per_proc(self, rng):
        f = Format("xy -> xy")
        A = TensorVar("A", (8, 8), f)
        B = TensorVar("B", (8, 8), f)
        i, j = index_vars("i j")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, j])
        res = run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(2, 2)),
            Machine.flat(2, 2),
            {"B": rng.random((8, 8))},
        )
        procs_with_work = {
            pid for s in res.trace.steps for pid in s.work
        }
        assert len(procs_with_work) == 4

    def test_flops_match_iteration_space(self, rng):
        n = 8
        f = Format("xy -> xy")
        A = TensorVar("A", (n, n), f)
        B = TensorVar("B", (n, n), f)
        C = TensorVar("C", (n, n), f)
        i, j, k = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, k] * C[k, j])
        res = run(
            stmt,
            lambda s: s.distribute([i, j], [io, jo], [ii, ji], Grid(2, 2)),
            Machine.flat(2, 2),
            {"B": rng.random((n, n)), "C": rng.random((n, n))},
        )
        assert res.trace.total_flops == 2 * n ** 3

    def test_symbolic_matches_functional_trace(self, rng):
        # Symbolic execution must produce the same phases as functional.
        from repro.algorithms import summa

        m = Machine.flat(2, 2)
        kern = summa(m, 16)
        func = kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))}
        )
        symb = kern.trace(check_capacity=False)
        assert len(func.trace.steps) == len(symb.trace.steps)
        assert func.trace.total_copy_bytes == symb.trace.total_copy_bytes
        assert func.trace.total_flops == symb.trace.total_flops


class TestInputValidation:
    def test_missing_inputs(self):
        A = TensorVar("A", (4,))
        b = TensorVar("b", (4,))
        i, = index_vars("i")
        stmt = Assignment(A[i], b[i])
        kern = compile_kernel(Schedule(stmt), Machine.flat(2))
        with pytest.raises((KeyError, ValueError)):
            kern.execute({})

    def test_wrong_shape(self, rng):
        A = TensorVar("A", (4,))
        b = TensorVar("b", (4,))
        i, = index_vars("i")
        stmt = Assignment(A[i], b[i])
        kern = compile_kernel(Schedule(stmt), Machine.flat(2))
        with pytest.raises(ValueError):
            kern.execute({"b": rng.random(5)})
