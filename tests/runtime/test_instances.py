"""Tests for instance tables, ownership, and memory accounting."""

import pytest

from repro import (
    Assignment,
    Format,
    Machine,
    Schedule,
    TensorVar,
    index_vars,
)
from repro.codegen.lower import lower_to_plan
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine as MachineCls
from repro.runtime.instances import DataEnvironment
from repro.util.errors import OutOfMemoryError
from repro.util.geometry import Interval, Rect


def make_env(machine=None, fmt="xy -> xy", n=8, check_capacity=False):
    machine = machine or Machine.flat(2, 2)
    f = Format(fmt)
    A = TensorVar("A", (n, n), f)
    B = TensorVar("B", (n, n), f)
    C = TensorVar("C", (n, n), f)
    i, j, k = index_vars("i j k")
    stmt = Assignment(A[i, j], B[i, k] * C[k, j])
    plan = lower_to_plan(Schedule(stmt), machine)
    return DataEnvironment(plan, check_capacity=check_capacity), plan


class TestOwnership:
    def test_home_rect(self):
        env, _ = make_env()
        rect = env.home_rect("B", (1, 0))
        assert rect == Rect.of(Interval(4, 8), Interval(0, 4))

    def test_owns(self):
        env, _ = make_env()
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        assert env.owns("B", (1, 0), tile)
        assert not env.owns("B", (0, 0), tile)

    def test_home_accounting(self):
        env, plan = make_env()
        # Each of 4 processors homes three 4x4 tiles (A, B, C).
        total = sum(env.usage_of(m) for m in plan.machine.cluster.memories())
        assert total == 3 * 8 * 8 * 8  # three 8x8 doubles in total


class TestAcquireRelease:
    def test_local_home_needs_no_copy(self):
        env, _ = make_env()
        tile = Rect.of(Interval(0, 4), Interval(0, 4))
        assert env.resolve("B", (0, 0), tile) == []

    def test_remote_fetch_from_owner(self):
        env, _ = make_env()
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        sources = env.resolve("B", (0, 0), tile)
        assert sources == [((1, 0), tile)]

    def test_register_then_local(self):
        env, _ = make_env()
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        assert env.register("B", (0, 0), tile)
        assert env.is_local("B", (0, 0), tile)
        assert not env.register("B", (0, 0), tile)  # already held

    def test_cached_becomes_source(self):
        env, _ = make_env(machine=Machine.flat(4, 1))
        tile = Rect.of(Interval(0, 2), Interval(0, 8))
        env.register("B", (2, 0), tile)
        # (3, 0) is distance 1 from the cache at (2, 0) but distance 1
        # from the owner (0,0) via wraparound; nearest selection may pick
        # either — both are valid sources at equal distance.
        sources = env.resolve("B", (3, 0), tile)
        assert sources[0][0] in [(2, 0), (0, 0)]

    def test_release_frees_bytes(self):
        env, plan = make_env()
        proc = plan.machine.proc_at((0, 0))
        before = env.usage_of(proc.memory)
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        env.register("B", (0, 0), tile)
        assert env.usage_of(proc.memory) == before + 4 * 4 * 8
        env.release("B", (0, 0), tile)
        assert env.usage_of(proc.memory) == before

    def test_multi_piece_fetch(self):
        env, _ = make_env()
        # A rect straddling all four tiles decomposes into four pieces.
        middle = Rect.of(Interval(2, 6), Interval(2, 6))
        sources = env.resolve("B", (0, 0), middle)
        assert len(sources) == 4
        assert sum(piece.volume for _, piece in sources) == middle.volume


class TestPartials:
    def test_note_and_flush(self):
        env, _ = make_env()
        foreign = Rect.of(Interval(4, 8), Interval(4, 8))
        assert env.note_partial("A", (0, 0), foreign)
        assert not env.note_partial("A", (0, 0), foreign)  # dedup
        flushed = env.flush_partials("A", (0, 0))
        assert flushed == [(foreign, (1, 1))]
        assert env.flush_partials("A", (0, 0)) == []

    def test_owned_write_is_not_partial(self):
        env, _ = make_env()
        own = Rect.of(Interval(0, 4), Interval(0, 4))
        assert not env.note_partial("A", (0, 0), own)


class TestCapacity:
    def test_oom_raises(self):
        cl = Cluster.build(
            num_nodes=4,
            procs_per_node=1,
            proc_kind=Cluster.cpu_cluster(1).processor_kind,
            proc_mem_kind=MemoryKind.SYSTEM_MEM,
            proc_mem_capacity=3 * 4 * 4 * 8,  # just the home tiles
            system_mem_capacity=3 * 4 * 4 * 8,
        )
        machine = MachineCls(cl, Grid(2, 2))
        env, _ = make_env(machine=machine, check_capacity=True)
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        with pytest.raises(OutOfMemoryError):
            env.register("B", (0, 0), tile)

    def test_high_water_tracked(self):
        env, plan = make_env()
        proc = plan.machine.proc_at((0, 0))
        tile = Rect.of(Interval(4, 8), Interval(0, 4))
        env.register("B", (0, 0), tile)
        env.release("B", (0, 0), tile)
        assert env.high_water[proc.memory.name] >= 3 * 16 * 8 + 16 * 8


class TestReplicatedHomes:
    def test_broadcast_dims_hold_replicas(self):
        machine = Machine.flat(2, 2)
        f = Format("x -> x*")
        c = TensorVar("c", (8,), f)
        A = TensorVar("A", (8,), f)
        i, = index_vars("i")
        stmt = Assignment(A[i], c[i])
        plan = lower_to_plan(Schedule(stmt), machine)
        env = DataEnvironment(plan)
        for y in range(2):
            rect = env.home_rect("c", (0, y))
            assert rect == Rect.of(Interval(0, 4))
