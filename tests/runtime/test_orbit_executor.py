"""Parity: orbit-compressed execution reproduces the scalar results.

The orbit executor groups contexts into symmetry classes and executes
one representative per class; these tests pin its ``SimReport`` —
total/comm/compute time, flops, bytes, traffic, and the per-memory
high-water dict — to the scalar reference interpreter on every Figure 9
case-study schedule, on higher-order kernels, and on deliberately
non-divisible (prime-extent) problems that defeat the symmetry.
"""

import numpy as np
import pytest

from repro.algorithms.higher_order import innerprod, mttkrp, ttm, ttv
from repro.algorithms.matmul import (
    cannon,
    cosma,
    johnson,
    pumma,
    solomonik,
    summa,
)
from repro.machine.cluster import Cluster, MemoryKind
from repro.machine.grid import Grid
from repro.machine.machine import Machine
from repro.runtime.orbit import OrbitExecutor, fold_rows
from repro.sim.params import LASSEN
from repro.util.errors import OutOfMemoryError


def assert_identical_reports(kernel, check_capacity=False):
    orbit = kernel.simulate(
        LASSEN, check_capacity=check_capacity, mode="orbit"
    )
    scalar = kernel.simulate(
        LASSEN, check_capacity=check_capacity, mode="scalar"
    )
    assert orbit == scalar, f"{orbit!r} != {scalar!r}"
    return orbit


@pytest.fixture
def m44():
    return Machine(Cluster.cpu_cluster(8), Grid(4, 4))


@pytest.fixture
def m222():
    return Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))


class TestFig9Parity:
    def test_cannon(self, m44):
        assert_identical_reports(cannon(m44, 256))

    def test_summa(self, m44):
        assert_identical_reports(summa(m44, 256))

    def test_pumma(self, m44):
        assert_identical_reports(pumma(m44, 256))

    def test_johnson(self, m222):
        assert_identical_reports(johnson(m222, 256))

    def test_solomonik(self, m222):
        assert_identical_reports(solomonik(m222, 256))

    def test_cosma(self):
        assert_identical_reports(cosma(Cluster.cpu_cluster(8), 256))


class TestHigherOrderParity:
    def test_ttv(self, m44):
        assert_identical_reports(ttv(m44, 64))

    def test_innerprod(self, m44):
        assert_identical_reports(innerprod(m44, 64))

    def test_ttm(self):
        m1 = Machine(Cluster.cpu_cluster(8), Grid(16))
        assert_identical_reports(ttm(m1, 64, r=16))

    def test_mttkrp(self, m222):
        assert_identical_reports(mttkrp(m222, 64, r=16))


class TestSymmetryDefeated:
    """Non-divisible shapes produce boundary classes; results stay exact."""

    def test_prime_extent_cannon(self, m44):
        assert_identical_reports(cannon(m44, 257))

    def test_prime_extent_summa(self, m44):
        assert_identical_reports(summa(m44, 131))

    def test_prime_extent_johnson(self, m222):
        assert_identical_reports(johnson(m222, 101))

    def test_odd_grid_systolic_tie(self):
        # On a 3x3 torus the rotation owner and the cached neighbour can
        # be equidistant; both executors must break the tie identically
        # (holder first — the systolic behaviour).
        m = Machine(Cluster.cpu_cluster(9, sockets_per_node=1), Grid(3, 3))
        assert_identical_reports(cannon(m, 96))


class TestMachinesAndMemories:
    def test_gpu_framebuffer(self):
        m = Machine(Cluster.gpu_cluster(4), Grid(4, 4))
        assert_identical_reports(
            cannon(m, 512, memory=MemoryKind.GPU_FB), check_capacity=True
        )

    def test_hierarchical_machine(self):
        m = Machine(Cluster.gpu_cluster(4), Grid(2, 2), Grid(2, 2))
        assert_identical_reports(cannon(m, 256, memory=MemoryKind.GPU_FB))

    def test_host_resident_tensors_on_gpus(self):
        # Out-of-core mode: tensors stay in system memory while leaves
        # run on GPUs — destination endpoints must still be priced at
        # the receiving processor's framebuffer, as the scalar path does.
        m = Machine(Cluster.gpu_cluster(4, gpus_per_node=2), Grid(4, 2))
        assert_identical_reports(cannon(m, 512, memory=MemoryKind.SYSTEM_MEM))
        assert_identical_reports(summa(m, 512, memory=MemoryKind.SYSTEM_MEM))

    def test_over_decomposition(self):
        m = Machine(Cluster.cpu_cluster(2, sockets_per_node=1), Grid(4, 4))
        assert_identical_reports(cannon(m, 128))

    def test_oom_outcome_matches_exactly(self):
        cluster = Cluster.gpu_cluster(1, gpus_per_node=4, framebuffer_gib=2)
        kernel = cannon(
            Machine(cluster, Grid(2, 2)), 40000, memory=MemoryKind.GPU_FB
        )
        with pytest.raises(OutOfMemoryError) as orbit_err:
            kernel.simulate(LASSEN, mode="orbit")
        with pytest.raises(OutOfMemoryError) as scalar_err:
            kernel.simulate(LASSEN, mode="scalar")
        a, b = orbit_err.value, scalar_err.value
        assert (a.memory_name, a.needed_bytes, a.capacity_bytes) == (
            b.memory_name,
            b.needed_bytes,
            b.capacity_bytes,
        )


class TestCompression:
    def test_copies_are_compressed_with_counts(self, m44):
        kernel = cannon(m44, 256)
        orbit = kernel.trace(check_capacity=False, mode="orbit").trace
        scalar = kernel.trace(check_capacity=False, mode="scalar").trace
        orbit_records = len(orbit.copies)
        scalar_records = len(scalar.copies)
        assert orbit_records < scalar_records
        # The multiplicities account for every physical copy.
        assert sum(c.count for c in orbit.copies) == scalar_records
        assert orbit.total_copy_bytes == scalar.total_copy_bytes
        assert orbit.inter_node_bytes == scalar.inter_node_bytes

    def test_cannon_steady_state_has_few_classes(self, m44):
        # Every interior Cannon step shifts one tile per tensor by the
        # same offset; classes split only by intra- vs inter-node
        # character, so each tensor compresses to at most two
        # representative copies regardless of grid size.
        kernel = cannon(m44, 256)
        orbit = kernel.trace(check_capacity=False, mode="orbit").trace
        scalar = kernel.trace(check_capacity=False, mode="scalar").trace
        steady = list(zip(orbit.steps, scalar.steps))[2:]
        compressed = [(o, s) for o, s in steady if o.copies]
        assert compressed
        for o_step, s_step in compressed:
            per_tensor = {}
            for c in o_step.copies:
                per_tensor.setdefault(c.tensor, []).append(c)
            for copies in per_tensor.values():
                assert len(copies) <= 2
            assert sum(c.count for c in o_step.copies) == len(s_step.copies)

    def test_work_is_compressed_with_counts(self, m44):
        kernel = cannon(m44, 256)
        orbit = kernel.trace(check_capacity=False, mode="orbit").trace
        scalar = kernel.trace(check_capacity=False, mode="scalar").trace
        for o_step, s_step in zip(orbit.steps, scalar.steps):
            assert sum(w.count for w in o_step.work.values()) == len(
                s_step.work
            )
            assert o_step.total_flops == s_step.total_flops

    def test_pinned_columns_match_scalar_columns(self, m44):
        kernel = summa(m44, 256)
        orbit = kernel.trace(check_capacity=False, mode="orbit").trace
        scalar = kernel.trace(check_capacity=False, mode="scalar").trace
        for o_step, s_step in zip(orbit.steps, scalar.steps):
            oc, sc = o_step.columns(), s_step.columns()
            assert oc.n == sc.n
            assert oc.nbytes.sum() == sc.nbytes.sum()
            assert oc.num_groups == sc.num_groups
            # Same collective structure: fan-out multiset.
            assert sorted(np.bincount(oc.group).tolist()) == sorted(
                np.bincount(sc.group).tolist()
            )


class TestAnalysisOnCompressedTraces:
    def test_summaries_match_full_traces(self, m44):
        # Trace analyses read compressed steps through the pinned
        # per-member columns, so pattern classification, fan-outs,
        # shifts and node traffic agree with the full record.
        from repro.sim.analysis import node_traffic_matrix, summarize

        for kernel in (cannon(m44, 256), summa(m44, 256)):
            full = kernel.trace(check_capacity=False, mode="batched").trace
            orbit = kernel.trace(check_capacity=False, mode="orbit").trace
            s_full, s_orbit = summarize(full, m44), summarize(orbit, m44)
            assert s_full.pattern == s_orbit.pattern
            assert [s.max_fanout for s in s_full.steps] == [
                s.max_fanout for s in s_orbit.steps
            ]
            assert [s.max_shift for s in s_full.steps] == [
                s.max_shift for s in s_orbit.steps
            ]
            assert s_full.total_bytes == s_orbit.total_bytes
            assert node_traffic_matrix(full) == node_traffic_matrix(orbit)


class TestModeSelection:
    def test_unknown_mode_rejected(self, m44):
        with pytest.raises(ValueError):
            cannon(m44, 64).trace(mode="not-a-mode")

    def test_orbit_executor_is_symbolic(self, m44):
        executor = OrbitExecutor(cannon(m44, 64).plan)
        assert executor.materialize is False and executor.batched is True


class TestFoldRows:
    def test_fold_is_collision_free(self):
        rng = np.random.default_rng(0)
        mat = rng.integers(-(2**40), 2**40, size=(500, 6))
        mat[100:200] = mat[:100]  # force duplicates
        keys = fold_rows(mat)
        by_key = {}
        for row, key in zip(map(tuple, mat), keys):
            assert by_key.setdefault(int(key), row) == row
        # equal rows -> equal keys
        assert np.array_equal(keys[100:200], keys[:100])

    def test_degenerate_shapes(self):
        assert fold_rows(np.zeros((0, 3), dtype=np.int64)).size == 0
        assert np.array_equal(
            fold_rows(np.zeros((4, 0), dtype=np.int64)),
            np.zeros(4, dtype=np.int64),
        )


@pytest.mark.slow
class TestLargeGridParity:
    def test_64_node_cannon_parity(self):
        cluster = Cluster.cpu_cluster(64)
        m = Machine(cluster, Grid(8, 16))
        assert_identical_reports(cannon(m, 2048))

    def test_64_node_mixed_grid_summa(self):
        cluster = Cluster.cpu_cluster(64)
        m = Machine(cluster, Grid(16, 8))
        assert_identical_reports(summa(m, 1999))
