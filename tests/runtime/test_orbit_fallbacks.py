"""The former scalar escape hatches, now class-batched — parity pinned.

PR 2's orbit executor fell back to the per-context scalar machinery on
three paths: requests spanning several home pieces (multi-piece
redistribution), reduction flushes, and leaf-level communication. All
three now execute as columnar class-level operations; these tests pin

* byte-identical ``SimReport``s against the scalar reference
  interpreter on schedules that exercise each path,
* that the executor *counts zero* re-entries into the per-context
  fallback (``fallback_events``), and
* that the batched replacements actually ran (coverage counters), so a
  regression cannot silently re-route through an untested path.
"""

import pytest

from repro import (
    Assignment,
    Format,
    Grid,
    Machine,
    Schedule,
    TensorVar,
    compile_kernel,
    index_vars,
)
from repro.algorithms.higher_order import innerprod, mttkrp
from repro.algorithms.matmul import cannon, cosma, solomonik, summa
from repro.core.transfer import transfer_kernel
from repro.machine.cluster import Cluster
from repro.runtime.orbit import OrbitExecutor
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN


def run_orbit(kernel, check_capacity=False):
    """Execute on a fresh orbit executor; return (executor, report)."""
    executor = OrbitExecutor(kernel.plan, check_capacity=check_capacity)
    result = executor.run()
    model = CostModel(kernel.machine.cluster, LASSEN)
    return executor, model.time_trace(result.trace)


def assert_parity_no_fallback(kernel, check_capacity=False):
    executor, orbit = run_orbit(kernel, check_capacity)
    scalar = kernel.simulate(
        LASSEN, check_capacity=check_capacity, mode="scalar"
    )
    assert orbit == scalar, f"{orbit!r} != {scalar!r}"
    assert executor.fallback_events == 0
    return executor


@pytest.fixture
def m44():
    return Machine(Cluster.cpu_cluster(8), Grid(4, 4))


@pytest.fixture
def m222():
    return Machine(Cluster.cpu_cluster(4), Grid(2, 2, 2))


class TestReductionFlushes:
    """Reduction write-backs: columnar flush batches, no fallback."""

    def test_solomonik_flush(self, m222):
        executor = assert_parity_no_fallback(solomonik(m222, 256))
        assert executor.flush_batches > 0

    def test_mttkrp_flush(self, m222):
        executor = assert_parity_no_fallback(mttkrp(m222, 64, r=16))
        assert executor.flush_batches > 0

    def test_innerprod_flush(self, m44):
        executor = assert_parity_no_fallback(innerprod(m44, 64))
        assert executor.flush_batches > 0

    def test_prime_extent_reduction(self, m222):
        # Ragged partials: per-member rect columns are non-uniform.
        executor = assert_parity_no_fallback(solomonik(m222, 101))
        assert executor.flush_batches > 0


class TestMultiPieceFetch:
    """Requests spanning several home pieces resolve per rect class."""

    def test_cosma_stays_exact(self):
        # COSMA's recursive splits stress non-uniform phases (its former
        # fallback copies were reduction flushes).
        executor = assert_parity_no_fallback(
            cosma(Cluster.cpu_cluster(8), 256)
        )
        assert executor.flush_batches > 0

    def test_redistribution_transfer_kernel(self):
        # A pipeline-style redistribution: the identity kernel between
        # mismatched layouts splits nearly every request across owners.
        cluster = Cluster.cpu_cluster(8)
        machine = Machine(cluster, Grid(4, 4))
        src = TensorVar("S", (128, 128), Format("xy -> xy"))
        # Row-replicating the 2-D-tiled source: every destination task
        # reads a full row panel, which spans four source pieces.
        kernel = transfer_kernel(src, Format("xy -> x*"), machine)
        executor = assert_parity_no_fallback(kernel)
        assert executor.multi_piece_batches > 0


class TestLeafComm:
    """Leaf-level communication phases run the batched orbit path."""

    def _leaf_comm_kernel(self, n=64, k=96):
        f = Format("xy -> xy")
        A = TensorVar("A", (n, n), f)
        B = TensorVar("B", (n, k), f)
        C = TensorVar("C", (k, n), f)
        i, j, kk = index_vars("i j k")
        io, ii, jo, ji = index_vars("io ii jo ji")
        stmt = Assignment(A[i, j], B[i, kk] * C[kk, j])
        sched = Schedule(stmt).distribute(
            [i, j], [io, jo], [ii, ji], Grid(2, 2)
        )
        return compile_kernel(
            sched, Machine(Cluster.cpu_cluster(2), Grid(2, 2))
        )

    def test_default_lowered_matmul(self):
        # Tensors without an explicit communicate tag fetch (and the
        # output flushes) at the leaf — the naive completion.
        executor = assert_parity_no_fallback(self._leaf_comm_kernel())
        assert executor.leaf_comm_phases > 0

    def test_non_divisible_leaf_comm(self):
        executor = assert_parity_no_fallback(self._leaf_comm_kernel(n=67, k=51))
        assert executor.leaf_comm_phases > 0


class TestNoFallbackAcrossSuite:
    """The flagship schedules never re-enter the scalar machinery."""

    @pytest.mark.parametrize("build,n", [
        (cannon, 256), (summa, 256), (cannon, 257),
    ])
    def test_matmuls(self, m44, build, n):
        assert_parity_no_fallback(build(m44, n))

    def test_rotation_replay_stays_exact(self):
        # Long systolic loops hit the translation/rotation replay fast
        # paths; the reports must stay byte-identical to scalar.
        m = Machine(Cluster.cpu_cluster(64), Grid(16, 8))
        assert_parity_no_fallback(cannon(m, 2048))
        assert_parity_no_fallback(summa(m, 1999))
