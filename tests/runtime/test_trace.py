"""Unit tests for trace records and aggregation."""

import pytest

from repro.machine.cluster import Cluster
from repro.runtime.trace import Copy, Step, Trace, Work
from repro.util.geometry import Interval, Rect


@pytest.fixture
def cluster():
    return Cluster.cpu_cluster(2, sockets_per_node=1)


def copy(cluster, src, dst, nbytes=80, reduce=False):
    sp, dp = cluster.processors[src], cluster.processors[dst]
    return Copy(
        tensor="T",
        rect=Rect.of(Interval(0, nbytes // 8)),
        nbytes=nbytes,
        src_proc=sp,
        dst_proc=dp,
        src_mem=sp.memory,
        dst_mem=dp.memory,
        reduce=reduce,
    )


class TestCopy:
    def test_inter_node(self, cluster):
        assert copy(cluster, 0, 1).inter_node
        one_node = Cluster.cpu_cluster(1)
        assert not copy(one_node, 0, 1).inter_node


class TestWork:
    def test_accumulation(self):
        w = Work()
        w.add(100.0, 10.0, "blas_gemm", False)
        w.add(50.0, 5.0, None, True, staged_bytes=3.0)
        assert w.flops == 150.0
        assert w.bytes_touched == 15.0
        assert w.staged_bytes == 3.0
        assert w.kernel == "blas_gemm"  # None does not clear it
        assert w.parallel
        assert w.invocations == 2


class TestStepAndTrace:
    def test_step_aggregates(self, cluster):
        step = Step(label="s")
        step.copies.append(copy(cluster, 0, 1, nbytes=100))
        step.work_for(cluster.processors[0]).add(7.0, 0.0, None, False)
        assert step.total_copy_bytes == 100
        assert step.inter_node_bytes == 100
        assert step.total_flops == 7.0

    def test_trace_aggregates(self, cluster):
        trace = Trace()
        s1 = trace.new_step("a")
        s1.copies.append(copy(cluster, 0, 1, nbytes=100))
        s2 = trace.new_step("b")
        s2.copies.append(copy(cluster, 1, 0, nbytes=60))
        s2.work_for(cluster.processors[1]).add(3.0, 0.0, None, False)
        assert trace.total_copy_bytes == 160
        assert trace.total_flops == 3.0
        assert len(trace.copies) == 2

    def test_current_creates_on_demand(self):
        trace = Trace()
        step = trace.current
        assert trace.steps == [step]
        assert trace.current is step
