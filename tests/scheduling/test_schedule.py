"""Tests for the scheduling language rewrites."""

import pytest

from repro import Assignment, Grid, Schedule, TensorVar, index_vars
from repro.ir.concrete import Assign
from repro.util.errors import ScheduleError


def gemm(n=8):
    A = TensorVar("A", (n, n))
    B = TensorVar("B", (n, n))
    C = TensorVar("C", (n, n))
    i, j, k = index_vars("i j k")
    return Assignment(A[i, j], B[i, k] * C[k, j]), (A, B, C), (i, j, k)


class TestDefaultLowering:
    def test_loop_order(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt)
        assert sched.loop_vars() == [i, j, k]

    def test_leaf_is_reduce_assign(self):
        stmt, _, _ = gemm()
        sched = Schedule(stmt)
        leaf = sched.stmt.foralls()[-1].body
        assert isinstance(leaf, Assign)
        assert leaf.reduce


class TestSplitDivideReorder:
    def test_split_inserts_pair(self):
        stmt, _, (i, j, k) = gemm()
        io, ii = index_vars("io ii")
        sched = Schedule(stmt).split(i, io, ii, 4)
        assert sched.loop_vars() == [io, ii, j, k]

    def test_divide(self):
        stmt, _, (i, j, k) = gemm()
        ko, ki = index_vars("ko ki")
        sched = Schedule(stmt).divide(k, ko, ki, 2)
        assert sched.loop_vars() == [i, j, ko, ki]
        assert sched.graph.extent(ko) == 2

    def test_reorder(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).reorder([k, j, i])
        assert sched.loop_vars() == [k, j, i]

    def test_reorder_segment(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).reorder([k, j])
        assert sched.loop_vars() == [i, k, j]

    def test_reorder_non_contiguous_rejected(self):
        stmt, _, (i, j, k) = gemm()
        io, ii = index_vars("io ii")
        sched = Schedule(stmt).split(i, io, ii, 4)
        # io and j are not adjacent (ii sits between them).
        with pytest.raises(ScheduleError):
            sched.reorder([j, io])

    def test_reorder_unknown_var(self):
        stmt, _, _ = gemm()
        with pytest.raises(ScheduleError):
            Schedule(stmt).reorder(index_vars("zz yy"))

    def test_tags_travel_with_reorder(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        sched = Schedule(stmt).communicate(B, k).reorder([k, j, i])
        foralls = sched.stmt.foralls()
        assert foralls[0].var == k
        assert foralls[0].communicated == ["B"]


class TestCollapse:
    def test_collapse_fuses(self):
        stmt, _, (i, j, k) = gemm()
        f, = index_vars("f")
        sched = Schedule(stmt).collapse(i, j, f)
        assert sched.loop_vars() == [f, k]
        assert sched.graph.extent(f) == 64

    def test_collapse_needs_nesting(self):
        stmt, _, (i, j, k) = gemm()
        f, = index_vars("f")
        with pytest.raises(ScheduleError):
            Schedule(stmt).collapse(i, k, f)


class TestDistribute:
    def test_mark_form(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).distribute([i, j])
        foralls = sched.stmt.foralls()
        assert foralls[0].distributed and foralls[1].distributed
        assert not foralls[2].distributed

    def test_compound_form(self):
        stmt, _, (i, j, k) = gemm()
        io, ii, jo, ji = index_vars("io ii jo ji")
        sched = Schedule(stmt).distribute(
            [i, j], [io, jo], [ii, ji], Grid(2, 2)
        )
        assert sched.loop_vars() == [io, jo, ii, ji, k]
        assert sched.stmt.foralls()[0].distributed
        assert sched.stmt.foralls()[1].distributed

    def test_compound_needs_matching_arity(self):
        stmt, _, (i, j, k) = gemm()
        io, ii = index_vars("io ii")
        with pytest.raises(ScheduleError):
            Schedule(stmt).distribute([i, j], [io], [ii], Grid(2))

    def test_machine_level_recorded(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).distribute([i], level=1)
        assert sched.stmt.foralls()[0].machine_level == 1


class TestCommunicate:
    def test_tags_forall(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        sched = Schedule(stmt).communicate([B, C], k)
        assert sched.stmt.foralls()[2].communicated == ["B", "C"]
        assert sched.communicated_at() == {"B": k, "C": k}

    def test_double_communicate_rejected(self):
        stmt, (A, B, C), (i, j, k) = gemm()
        sched = Schedule(stmt).communicate(B, k)
        with pytest.raises(ScheduleError):
            sched.communicate(B, i)

    def test_unknown_tensor_rejected(self):
        stmt, _, (i, j, k) = gemm()
        with pytest.raises(ScheduleError):
            Schedule(stmt).communicate("nope", k)


class TestRotate:
    def test_rotate_replaces_loop(self):
        stmt, _, (i, j, k) = gemm()
        kos, = index_vars("kos")
        sched = Schedule(stmt).distribute([i, j]).rotate(k, [i, j], kos)
        assert sched.loop_vars() == [i, j, kos]
        assert sched.graph.is_rotate_result(kos)

    def test_rotate_unknown_target(self):
        stmt, _, _ = gemm()
        zz, kos = index_vars("zz kos")
        with pytest.raises(ScheduleError):
            Schedule(stmt).rotate(zz, [], kos)


class TestSubstitute:
    def test_marks_innermost(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).substitute([j, k], "blas_gemm")
        assert sched.stmt.foralls()[1].substituted == "blas_gemm"

    def test_rejects_non_innermost(self):
        stmt, _, (i, j, k) = gemm()
        with pytest.raises(ScheduleError):
            Schedule(stmt).substitute([i, j], "blas_gemm")


class TestPrecompute:
    def test_splits_leaf(self):
        from repro.ir.concrete import Sequence

        A = TensorVar("A", (8,))
        b = TensorVar("b", (8,))
        c = TensorVar("c", (8,))
        w = TensorVar("w", (8,))
        i, = index_vars("i")
        sub = b[i] * c[i]
        stmt = Assignment(A[i], sub)
        sched = Schedule(stmt).precompute(sub, w, [i])
        leaf = sched.stmt.foralls()[-1].body
        assert isinstance(leaf, Sequence)
        assert len(leaf.stmts) == 2
        assert leaf.stmts[0].lhs.tensor.name == "w"

    def test_pretty_mentions_commands(self):
        stmt, _, (i, j, k) = gemm()
        sched = Schedule(stmt).distribute([i]).communicate("B", k)
        text = sched.pretty()
        assert "distribute" in text
        assert "communicate(B)" in text
