"""The unified scheduling API: one request/answer pair everywhere.

``repro.api`` is the contract the in-process ``Kernel.tune`` path, the
wire protocol, and the ledger all share: the einsum text round-trips
to the exact expression tree, the request record round-trips to the
same fingerprint, and equal requests produce byte-identical canonical
answers no matter which entry point tuned them.
"""

import json

import pytest

from repro.api import (
    MachineSpec,
    ScheduleAnswer,
    ScheduleRequest,
    assignment_of,
    canonical_json,
    einsum_of,
    tune_request,
)
from repro.machine.cluster import Cluster
from repro.tuner.workloads import WORKLOADS, sized


class TestEinsumRoundTrip:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_round_trip_is_exact(self, name):
        assignment = sized(name, 64)
        text = einsum_of(assignment)
        shapes = {t.name: list(t.shape) for t in assignment.tensors()}
        rebuilt = assignment_of(
            text, shapes, accumulate=assignment.accumulate
        )
        # repr equality means the identical expression tree: same
        # operator associativity, same index-variable names.
        assert repr(rebuilt) == repr(assignment)
        assert einsum_of(rebuilt) == text

    def test_matmul_text(self):
        assert einsum_of(sized("matmul", 64)) == "A[i,j]=B[i,k]*C[k,j]"


class TestRequestRecord:
    def test_record_round_trip_preserves_fingerprint(self):
        request = ScheduleRequest.from_assignment(
            sized("mttkrp", 64), Cluster.cpu_cluster(2)
        )
        rebuilt = ScheduleRequest.from_record(
            json.loads(json.dumps(request.to_record()))
        )
        assert rebuilt.fingerprint() == request.fingerprint()
        assert rebuilt.structure_key() == request.structure_key()

    def test_fingerprint_depends_on_options(self):
        base = ScheduleRequest.from_assignment(
            sized("matmul", 64), Cluster.cpu_cluster(1)
        )
        reseeded = ScheduleRequest.from_assignment(
            sized("matmul", 64), Cluster.cpu_cluster(1), seed=7
        )
        bigger = ScheduleRequest.from_assignment(
            sized("matmul", 128), Cluster.cpu_cluster(1)
        )
        assert base.fingerprint() != reseeded.fingerprint()
        assert base.fingerprint() != bigger.fingerprint()
        # Shapes are not part of the structure key: the 128 problem is
        # the 64 problem's warm-transfer neighbor.
        assert base.structure_key() == bigger.structure_key()

    def test_machine_spec_round_trips_cluster(self):
        for cluster in (Cluster.cpu_cluster(4), Cluster.gpu_cluster(2)):
            spec = MachineSpec.from_cluster(cluster)
            again = spec.to_cluster()
            assert MachineSpec.from_cluster(again) == spec
            assert again.num_processors == cluster.num_processors


class TestTuneRequest:
    def test_equal_requests_tune_byte_identically(self):
        request = ScheduleRequest.from_assignment(
            sized("matmul", 64), Cluster.cpu_cluster(1)
        )
        answers = [
            canonical_json(tune_request(request).answer.canonical_record())
            for _ in range(2)
        ]
        assert answers[0] == answers[1]

    def test_kernel_tune_answer_matches_api_path(self):
        from repro.core.kernel import Kernel

        cluster = Cluster.cpu_cluster(1)
        assignment = sized("matmul", 64)
        request = ScheduleRequest.from_assignment(assignment, cluster)
        via_api = tune_request(request)
        via_kernel = Kernel.tune(assignment, cluster)
        assert via_kernel.answer is not None
        assert canonical_json(
            via_kernel.answer.canonical_record()
        ) == canonical_json(via_api.answer.canonical_record())
        assert (
            via_kernel.answer.request_fingerprint
            == request.fingerprint()
        )

    def test_answer_record_round_trips(self):
        request = ScheduleRequest.from_assignment(
            sized("matmul", 64), Cluster.cpu_cluster(1)
        )
        answer = tune_request(request).answer
        rebuilt = ScheduleAnswer.from_record(
            json.loads(json.dumps(answer.to_record()))
        )
        assert rebuilt.canonical_record() == answer.canonical_record()
        assert rebuilt.provenance == answer.provenance

    def test_warm_strategy_simulates_fewer_candidates(self):
        request = ScheduleRequest.from_assignment(
            sized("matmul", 128), Cluster.cpu_cluster(2)
        )
        cold = tune_request(request)
        warm = tune_request(
            request,
            warm_start=cold.search.best.decision,
            strategy="warm",
        )
        assert warm.search.evaluations < cold.search.evaluations
        assert warm.answer.provenance == "warm-started"
        assert warm.answer.feasible
