"""The serving daemon end to end: hits, misses, dedup, warm starts.

One daemon per test (tiny workloads keep each tune well under a
second); every test runs over a unix socket in a temp dir. Counter
assertions are on *deltas* — the ``serve.*`` counters live in the
process-global metrics registry.
"""

import contextlib
import threading

from repro.api import ScheduleRequest, canonical_json, tune_request
from repro.machine.cluster import Cluster
from repro.obs.metrics import METRICS
from repro.serve.client import ScheduleClient
from repro.serve.daemon import ScheduleServer, start_background
from repro.serve.shard import ShardedLedger
from repro.tuner.workloads import sized


def _request(size=64, nodes=1, **options):
    return ScheduleRequest.from_assignment(
        sized("matmul", size), Cluster.cpu_cluster(nodes), **options
    )


@contextlib.contextmanager
def serving(tmp_path, **kwargs):
    server = ScheduleServer(
        tmp_path / "ledger",
        socket_path=str(tmp_path / "serve.sock"),
        tune_jobs=1,
        **kwargs,
    )
    handle = start_background(server)
    try:
        with ScheduleClient(
            socket_path=server.socket_path, timeout=120.0
        ) as client:
            yield server, client
    finally:
        handle.stop()


def _counter(name):
    return METRICS.snapshot(sources=False).get(name, 0)


class TestHitMiss:
    def test_miss_tunes_then_hits_are_byte_identical(self, tmp_path):
        request = _request()
        offline = tune_request(request)
        hits0, misses0 = _counter("serve.hits"), _counter("serve.misses")
        with serving(tmp_path) as (server, client):
            first = client.schedule(request)
            assert first["status"] == "ok"
            assert first["provenance"] == "tuned"
            second = client.schedule(request)
            assert second["provenance"] == "hit"
        assert _counter("serve.misses") == misses0 + 1
        assert _counter("serve.hits") == hits0 + 1
        # The served hit is byte-identical to the offline in-process
        # tune of the same request, and to the tuned miss before it.
        for response in (first, second):
            assert canonical_json(
                _canonical(response["answer"])
            ) == canonical_json(
                _canonical(offline.answer.to_record())
            )

    def test_restart_serves_persisted_answers_as_hits(self, tmp_path):
        request = _request()
        with serving(tmp_path) as (server, client):
            assert client.schedule(request)["provenance"] == "tuned"
        # A fresh daemon over the same root rebuilds its index from
        # the shards: no tuning, the answer is already a hit.
        with serving(tmp_path) as (server, client):
            assert len(server.index) == 1
            assert client.schedule(request)["provenance"] == "hit"

    def test_wait_false_returns_pending(self, tmp_path):
        with serving(tmp_path) as (server, client):
            request = _request()
            pending = client.schedule(request, wait=False)
            assert pending["status"] == "pending"
            assert pending["fingerprint"] == request.fingerprint()
            done = client.schedule(request)  # joins the same tune
            assert done["status"] == "ok"

    def test_bad_request_is_an_error_response(self, tmp_path):
        errors0 = _counter("serve.errors")
        with serving(tmp_path) as (server, client):
            response = client._roundtrip({
                "op": "schedule",
                "request": {"einsum": "not an einsum ]["},
            })
            assert response["status"] == "error"
        assert _counter("serve.errors") == errors0 + 1


class TestDedupAndWarm:
    def test_identical_inflight_misses_share_one_tune(self, tmp_path):
        deduped0 = _counter("serve.deduped")
        tunes0 = _counter("serve.tunes")
        with serving(tmp_path) as (server, client):
            request = _request(size=128)
            client.schedule(request, wait=False)
            client.schedule(request, wait=False)
            final = client.schedule(request)
            assert final["status"] == "ok"
        assert _counter("serve.deduped") >= deduped0 + 1
        assert _counter("serve.tunes") == tunes0 + 1

    def test_miss_near_tuned_neighbor_warm_starts(self, tmp_path):
        warm0 = _counter("serve.warm_started")
        cold = tune_request(_request(size=128))
        with serving(tmp_path) as (server, client):
            assert client.schedule(_request())["provenance"] == "tuned"
            warmed = client.schedule(_request(size=128))
            assert warmed["provenance"] == "warm-started"
            answer = warmed["answer"]
            assert answer["evaluations"] < cold.search.evaluations
            assert answer["cost"] != "infeasible"
        assert _counter("serve.warm_started") == warm0 + 1
        # Persisted with its true provenance, not rewritten to "hit".
        ledger = ShardedLedger(tmp_path / "ledger")
        record = ledger.get_answer(_request(size=128).fingerprint())
        assert record["answer"]["provenance"] == "warm-started"

    def test_no_warm_flag_disables_transfer(self, tmp_path):
        warm0 = _counter("serve.warm_started")
        with serving(tmp_path, warm_start=False) as (server, client):
            client.schedule(_request())
            warmed = client.schedule(_request(size=128))
            assert warmed["provenance"] == "tuned"
        assert _counter("serve.warm_started") == warm0


class TestProtocolOps:
    def test_ping_stats_shutdown(self, tmp_path):
        with serving(tmp_path) as (server, client):
            assert client.ping()
            stats = client.stats()
            assert stats["status"] == "ok"
            assert stats["shards"] == server.ledger.shards
            assert stats["answers"] == 0
            assert client.shutdown()["stopping"]

    def test_hits_do_not_block_on_inflight_tune(self, tmp_path):
        request = _request()
        slow = _request(size=256, nodes=2)
        with serving(tmp_path) as (server, client):
            client.schedule(request)  # seed one answer
            client.schedule(slow, wait=False)  # cold tune in flight
            responses = client.schedule_batch([request] * 50)
            assert all(r["provenance"] == "hit" for r in responses)
            done = client.schedule(slow)
            assert done["status"] == "ok"


def _canonical(answer_record):
    from repro.api import ScheduleAnswer

    return ScheduleAnswer.from_record(answer_record).canonical_record()


def test_concurrent_clients(tmp_path):
    """Many clients over one socket: every response routes home."""
    request = _request()
    with serving(tmp_path) as (server, client):
        client.schedule(request)  # prime the index
        results = []

        def hammer():
            with ScheduleClient(
                socket_path=server.socket_path, timeout=120.0
            ) as mine:
                results.append(
                    [mine.schedule(request)["provenance"]
                     for _ in range(10)]
                )

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
    assert len(results) == 4
    for provenances in results:
        assert provenances == ["hit"] * 10
