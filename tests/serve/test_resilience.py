"""The serving resilience layer: shedding, deadlines, drain, recovery.

Everything ``docs/serving.md``'s resilience section promises, pinned:
admission control sheds with a structured ``"overloaded"`` response, a
per-request deadline answers a typed error while the tune finishes in
the background, draining refuses new misses but keeps serving hits,
oversized and torn frames never desync a connection, client timeouts
poison the socket with a typed error, crashes retry and poison
requests quarantine durably, and the client reconnects idempotently
across drops and daemon restarts.
"""

import contextlib
import time

import pytest

from repro.api import ScheduleRequest, canonical_json, tune_request
from repro.faults.chaos import (
    ChaosController,
    ChaosPlan,
    DropConnection,
    KillWorker,
    PoisonRequest,
    TornLine,
)
from repro.machine.cluster import Cluster
from repro.obs.metrics import METRICS
from repro.serve.client import (
    ConnectionLost,
    RequestTimeout,
    ScheduleClient,
)
from repro.serve.daemon import ScheduleServer, start_background
from repro.serve.supervise import QUARANTINE_FILE
from repro.tuner.workloads import sized


def _request(size=64, nodes=1, **options):
    return ScheduleRequest.from_assignment(
        sized("matmul", size), Cluster.cpu_cluster(nodes), **options
    )


def _counter(name):
    return METRICS.snapshot(sources=False).get(name, 0)


def _canonical(answer_record):
    from repro.api import ScheduleAnswer

    return ScheduleAnswer.from_record(answer_record).canonical_record()


@contextlib.contextmanager
def serving(tmp_path, client_kwargs=None, **kwargs):
    kwargs.setdefault("tune_jobs", 1)
    server = ScheduleServer(
        tmp_path / "ledger",
        socket_path=str(tmp_path / "serve.sock"),
        **kwargs,
    )
    handle = start_background(server)
    try:
        client_kwargs = dict(client_kwargs or {})
        client_kwargs.setdefault("timeout", 120.0)
        with ScheduleClient(
            socket_path=server.socket_path, **client_kwargs
        ) as client:
            yield server, client
    finally:
        handle.stop()


def _poll_until_ok(client, fingerprint, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        response = client.poll(fingerprint)
        if response["status"] == "ok":
            return response
        assert response["status"] == "pending", response
        time.sleep(0.05)
    raise AssertionError(f"{fingerprint} never resolved")


class TestAdmissionControl:
    def test_full_miss_queue_sheds_with_retry_hint(self, tmp_path):
        shed0 = _counter("serve.shed")
        with serving(
            tmp_path,
            max_pending=1,
            client_kwargs={"retries": 0},
        ) as (server, client):
            first = client.schedule(_request(48), wait=False)
            assert first["status"] == "pending"
            second = client.schedule(_request(96), wait=False)
            assert second["status"] == "overloaded"
            assert second["retry_after_s"] > 0
            assert "full" in second["error"]
            # Hits and polls still answer while the queue is full.
            assert client.poll(first["fingerprint"])["status"] in (
                "pending", "ok",
            )
            _poll_until_ok(client, first["fingerprint"])
        assert _counter("serve.shed") == shed0 + 1

    def test_client_retries_overloaded_until_admitted(self, tmp_path):
        with serving(tmp_path, max_pending=1) as (server, client):
            pending = client.schedule(_request(48), wait=False)
            # The resilient path keeps retrying after the hint; the
            # first tune finishes well within the retry budget.
            answered = client.schedule(_request(96), deadline_s=90.0)
            assert answered["status"] == "ok"
            _poll_until_ok(client, pending["fingerprint"])


class TestDeadlines:
    def test_expired_deadline_is_typed_and_answer_stays_pollable(
        self, tmp_path
    ):
        request = _request(96)
        with serving(tmp_path) as (server, client):
            response = client.schedule(request, deadline_s=0.001)
            assert response["status"] == "error"
            assert response["code"] == "deadline"
            assert response["fingerprint"] == request.fingerprint()
            # The tune was not cancelled — the answer (tuned under the
            # deadline-capped oracle timeout, so possibly a truncated
            # search) still arrives and is served.
            done = _poll_until_ok(client, request.fingerprint())
            assert done["provenance"] in ("tuned", "warm-started", "hit")

    def test_bad_deadline_is_a_structured_error(self, tmp_path):
        with serving(tmp_path) as (server, client):
            response = client._roundtrip({
                "op": "schedule",
                "request": _request().to_record(),
                "deadline_s": "soon",
            })
            assert response["status"] == "error"
            assert "deadline_s" in response["error"]


class TestDrain:
    def test_draining_refuses_misses_but_serves_hits(self, tmp_path):
        hot = _request(48)
        with serving(tmp_path) as (server, client):
            assert client.schedule(hot)["status"] == "ok"
            server.draining = True  # drain flag only; daemon stays up
            refused = client._roundtrip({
                "op": "schedule",
                "request": _request(96).to_record(),
            })
            assert refused["status"] == "error"
            assert refused["code"] == "draining"
            assert client.schedule(hot)["provenance"] == "hit"
            server.draining = False  # let the fixture shut down clean

    def test_shutdown_op_drains_and_stops(self, tmp_path):
        with serving(tmp_path) as (server, client):
            assert client.schedule(_request(48))["status"] == "ok"
            response = client.shutdown()
            assert response["stopping"] and response["draining"]


class TestFrameDiscipline:
    def test_oversized_line_answers_error_and_keeps_stream(
        self, tmp_path
    ):
        errors0 = _counter("serve.errors")
        with serving(tmp_path, line_limit=4096) as (server, client):
            client._file.write(b"\x7b" * 8192 + b"\n")
            client._file.flush()
            response = client._recv()
            assert response["status"] == "error"
            assert response["code"] == "oversized"
            # Same connection, next frame: fully functional.
            assert client.ping()
        assert _counter("serve.errors") == errors0 + 1

    def test_torn_final_line_just_closes_the_connection(self, tmp_path):
        with serving(tmp_path) as (server, client):
            client._file.write(b'{"op": "pi')
            client._file.flush()
            client.close()
            # The daemon survives the torn line; a fresh connection
            # works immediately.
            with ScheduleClient(
                socket_path=server.socket_path, timeout=30.0
            ) as fresh:
                assert fresh.ping()


class TestClientTimeout:
    def test_timeout_poisons_the_connection_with_typed_error(
        self, tmp_path
    ):
        request = _request(96)
        with serving(
            tmp_path, client_kwargs={"timeout": 0.05}
        ) as (server, client):
            with pytest.raises(RequestTimeout):
                client.schedule(request)
            assert client._file is None  # poisoned, never reused
            # The next call reconnects; the tune kept running and the
            # answer is (eventually) served from the index.
            client._timeout = 120.0
            _poll_until_ok(client, request.fingerprint())


class TestPollAcrossRestarts:
    def test_wait_false_poll_and_poll_after_daemon_restart(
        self, tmp_path
    ):
        request = _request(64)
        offline = tune_request(request).answer.to_record()
        with serving(tmp_path) as (server, client):
            pending = client.schedule(request, wait=False)
            assert pending["status"] == "pending"
            assert pending["fingerprint"] == request.fingerprint()
            # A repeated wait=False schedule joins, never re-tunes.
            again = client.schedule(request, wait=False)
            assert again["status"] in ("pending", "ok")
            first = _poll_until_ok(client, request.fingerprint())
        # Restart over the same root: the fingerprint outlives the
        # daemon, and the poll answers byte-identically from the
        # rebuilt index.
        with serving(tmp_path) as (server, client):
            polled = client.poll(request.fingerprint())
            assert polled["status"] == "ok"
            assert polled["provenance"] == "hit"
            for response in (first, polled):
                assert canonical_json(
                    _canonical(response["answer"])
                ) == canonical_json(_canonical(offline))

    def test_poll_of_unknown_fingerprint_is_typed(self, tmp_path):
        with serving(tmp_path) as (server, client):
            response = client.poll("no-such-fingerprint")
            assert response["status"] == "error"
            assert response["code"] == "unknown-fingerprint"


class TestQuarantine:
    def test_poison_request_quarantines_durably(self, tmp_path):
        request = _request(48)
        fingerprint = request.fingerprint()
        controller = ChaosController(
            ChaosPlan(events=(PoisonRequest(fingerprint=fingerprint),))
        )
        crashes0 = _counter("serve.crashes")
        quarantined0 = _counter("serve.quarantined")
        with serving(
            tmp_path,
            chaos=controller,
            worker_retries=1,
            quarantine_after=2,
            retry_backoff_s=0.01,
        ) as (server, client):
            response = client.schedule(request, deadline_s=60.0)
            assert response["status"] == "ok"
            assert response["provenance"] == "quarantined"
            answer = response["answer"]
            assert answer["cost"] == "infeasible"
            assert "died" in answer["quarantine_reason"]
        assert _counter("serve.crashes") >= crashes0 + 2
        assert _counter("serve.quarantined") == quarantined0 + 1
        assert (tmp_path / "ledger" / QUARANTINE_FILE).exists()
        # A restarted daemon serves the quarantined answer as an
        # indexed hit — the crasher is never dispatched again (no
        # chaos controller here: a dispatch would tune cleanly and
        # betray the test).
        with serving(tmp_path) as (server, client):
            served = client.schedule(request)
            assert served["provenance"] == "quarantined"
        assert _counter("serve.crashes") == crashes0 + 2

    def test_transient_crash_retries_to_success(self, tmp_path):
        # One positional kill: the first dispatch dies, the retry
        # tunes cleanly — no quarantine, correct answer.
        request = _request(64)
        controller = ChaosController(
            ChaosPlan(events=(KillWorker(dispatch=0),))
        )
        quarantined0 = _counter("serve.quarantined")
        retried0 = _counter("serve.retried")
        with serving(
            tmp_path,
            chaos=controller,
            worker_retries=2,
            retry_backoff_s=0.01,
        ) as (server, client):
            response = client.schedule(request, deadline_s=60.0)
            assert response["status"] == "ok"
            assert response["provenance"] in ("tuned", "warm-started")
            assert canonical_json(
                _canonical(response["answer"])
            ) == canonical_json(
                _canonical(tune_request(request).answer.to_record())
            )
        assert _counter("serve.quarantined") == quarantined0
        assert _counter("serve.retried") >= retried0 + 1


class TestReconnect:
    def test_dropped_connection_retries_idempotently(self, tmp_path):
        request = _request(64)
        controller = ChaosController(
            ChaosPlan(events=(DropConnection(reply=0),))
        )
        with serving(
            tmp_path,
            client_kwargs={"chaos": controller, "backoff_s": 0.01},
        ) as (server, client):
            response = client.schedule(request, deadline_s=60.0)
            assert response["status"] == "ok"
            assert client.reconnects >= 1
            assert canonical_json(
                _canonical(response["answer"])
            ) == canonical_json(
                _canonical(tune_request(request).answer.to_record())
            )

    def test_torn_frame_resends_on_a_fresh_connection(self, tmp_path):
        controller = ChaosController(
            ChaosPlan(events=(TornLine(send=0),))
        )
        with serving(
            tmp_path,
            client_kwargs={"chaos": controller, "backoff_s": 0.01},
        ) as (server, client):
            response = client.schedule(_request(48), deadline_s=60.0)
            assert response["status"] == "ok"
            assert client.reconnects >= 1

    def test_exhausted_retries_raise_connection_lost(self, tmp_path):
        server = ScheduleServer(
            tmp_path / "ledger",
            socket_path=str(tmp_path / "serve.sock"),
            tune_jobs=1,
        )
        handle = start_background(server)
        client = ScheduleClient(
            socket_path=server.socket_path,
            timeout=5.0,
            retries=2,
            backoff_s=0.01,
        )
        try:
            assert client.ping()
            handle.stop()  # daemon gone for good; no replacement
            with pytest.raises(ConnectionLost):
                client.schedule(_request(48))
        finally:
            client.close()

    def test_client_survives_daemon_restart_between_requests(
        self, tmp_path
    ):
        request = _request(48)
        server = ScheduleServer(
            tmp_path / "ledger",
            socket_path=str(tmp_path / "serve.sock"),
            tune_jobs=1,
        )
        handle = start_background(server)
        client = ScheduleClient(
            socket_path=server.socket_path,
            timeout=30.0,
            backoff_s=0.01,
        )
        try:
            assert client.schedule(request)["status"] == "ok"
            handle.stop()
            server = ScheduleServer(
                tmp_path / "ledger",
                socket_path=str(tmp_path / "serve.sock"),
                tune_jobs=1,
            )
            handle = start_background(server)
            # The old socket is dead; the client notices (EOF, not a
            # hang) and reconnects to the replacement, which serves
            # the persisted answer as a hit.
            response = client.schedule(request)
            assert response["status"] == "ok"
            assert response["provenance"] == "hit"
            assert client.reconnects >= 1
        finally:
            client.close()
            handle.stop()
