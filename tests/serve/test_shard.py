"""The sharded ledger: routing, manifest pinning, migration, crashes."""

import json

from repro.machine.cluster import Cluster
from repro.serve.shard import (
    DEFAULT_SHARDS,
    MANIFEST,
    ShardedLedger,
    migrate_single_file,
    open_ledger,
    shard_index,
)
from repro.tuner.oracle import TuningLedger
from repro.tuner.search import tune
from repro.sim.params import LASSEN
from repro.tuner.workloads import sized


def _answer(i: int):
    fingerprint = f"{i:016x}"
    return fingerprint, {
        "request": {"index": i},
        "answer": {"decision": f"d{i}", "cost": float(i)},
    }


class TestRouting:
    def test_shard_index_is_stable_and_in_range(self):
        for shards in (1, 2, 8, 13):
            for i in range(64):
                key = f"{i:016x}"
                index = shard_index(key, shards)
                assert 0 <= index < shards
                assert index == shard_index(key, shards)

    def test_answers_land_on_their_routed_shard(self, tmp_path):
        ledger = ShardedLedger(tmp_path / "root", shards=4)
        for i in range(32):
            fingerprint, record = _answer(i)
            ledger.put_answer(fingerprint, record)
        assert ledger.save()
        for i in range(32):
            fingerprint, record = _answer(i)
            index = shard_index(fingerprint, 4)
            shard = TuningLedger(
                tmp_path / "root" / f"shard-{index:02d}.json"
            )
            assert shard.answers[fingerprint] == record

    def test_manifest_pins_shard_count(self, tmp_path):
        root = tmp_path / "root"
        first = ShardedLedger(root, shards=3)
        assert first.shards == 3
        manifest = json.loads((root / MANIFEST).read_text())
        assert manifest["shards"] == 3
        # Re-opening with a different request must adopt the pinned
        # count — anything else mis-routes every existing key.
        again = ShardedLedger(root, shards=16)
        assert again.shards == 3
        assert ShardedLedger(root).shards == 3


class TestOpenLedger:
    def test_none_stays_none(self):
        assert open_ledger(None) is None

    def test_json_suffix_is_single_file(self, tmp_path):
        ledger = open_ledger(tmp_path / "ledger.json")
        assert isinstance(ledger, TuningLedger)

    def test_directory_and_extensionless_are_sharded(self, tmp_path):
        existing = tmp_path / "dir"
        existing.mkdir()
        assert isinstance(open_ledger(existing), ShardedLedger)
        assert isinstance(open_ledger(tmp_path / "fresh"), ShardedLedger)

    def test_existing_file_is_single_file(self, tmp_path):
        path = tmp_path / "noext"
        path.write_text('{"version": 1, "entries": {}}')
        assert isinstance(open_ledger(path), TuningLedger)


class TestMigration:
    def test_migrate_moves_entries_and_answers(self, tmp_path):
        source = tmp_path / "single.json"
        single = TuningLedger(source)
        assignment = sized("matmul", 64)
        cluster = Cluster.cpu_cluster(1)
        tune(assignment, cluster, LASSEN, ledger=single)
        fingerprint, record = _answer(7)
        single.put_answer(fingerprint, record)
        assert single.save()
        before = json.loads(source.read_text())

        sharded = migrate_single_file(source, tmp_path / "root", shards=4)
        assert len(sharded) == len(before["entries"])
        assert sharded.get_answer(fingerprint) == record
        # Repeatable: the source is untouched.
        assert json.loads(source.read_text()) == before

        # The migrated shards replay for the oracle: an identical
        # re-tune is all ledger hits, zero simulations.
        reopened = ShardedLedger(tmp_path / "root")
        result = tune(assignment, cluster, LASSEN, ledger=reopened)
        assert result.search.evaluations == 0
        assert reopened.hits > 0

    def test_wsig_routing_matches_workload_signature(self, tmp_path):
        source = tmp_path / "single.json"
        single = TuningLedger(source)
        assignment = sized("matmul", 64)
        cluster = Cluster.cpu_cluster(1)
        tune(assignment, cluster, LASSEN, ledger=single)
        single.save()
        wsigs = {key.split("/", 1)[0] for key in single.entries}
        assert len(wsigs) == 1  # one workload, one signature namespace
        wsig = wsigs.pop()
        sharded = migrate_single_file(source, tmp_path / "root", shards=4)
        index = shard_index(wsig, 4)
        shard = TuningLedger(
            tmp_path / "root" / f"shard-{index:02d}.json"
        )
        assert len(shard) == len(sharded)


class TestCrashSafety:
    def test_corrupt_shard_is_salvaged_not_fatal(self, tmp_path):
        root = tmp_path / "root"
        ledger = ShardedLedger(root, shards=2)
        for i in range(8):
            ledger.put_answer(*_answer(i))
        assert ledger.save()
        # Torch one shard mid-file, as a partial non-atomic write would.
        victim = root / "shard-00.json"
        victim.write_text(victim.read_text()[:20])
        reopened = ShardedLedger(root)
        survivors = dict(reopened.answers())
        assert reopened.salvaged >= 0  # loaded without raising
        kept = [
            _answer(i) for i in range(8)
            if shard_index(_answer(i)[0], 2) == 1
        ]
        for fingerprint, record in kept:
            assert survivors[fingerprint] == record

    def test_save_merges_concurrent_writers(self, tmp_path):
        root = tmp_path / "root"
        a = ShardedLedger(root, shards=2)
        b = ShardedLedger(root, shards=2)
        a.put_answer(*_answer(1))
        b.put_answer(*_answer(2))
        assert a.save()
        assert b.save()  # must read-merge, not clobber, a's answer
        fresh = ShardedLedger(root)
        answers = dict(fresh.answers())
        assert _answer(1)[0] in answers
        assert _answer(2)[0] in answers


def test_default_shard_count(tmp_path):
    assert ShardedLedger(tmp_path / "root").shards == DEFAULT_SHARDS
