"""Multi-process ledger stress: concurrent writers, kill -9 crashes.

The acceptance bar for the sharded ledger is the single-file one's,
under load: N uncoordinated writer processes lose nothing to each
other (every save is an advisory-locked read-merge-write), equal-seed
writer schedules leave byte-identical shard directories, and a
``kill -9`` landing anywhere inside the persistence path never leaves
a corrupt shard on disk (every replace is atomic).
"""

import json
import multiprocessing as mp
import os
import signal
from pathlib import Path

from repro.serve.shard import MANIFEST, ShardedLedger

WRITERS = 4
PER_WRITER = 25


def _fingerprint(writer: int, i: int) -> str:
    return f"{writer:04x}{i:012x}"


def _record(writer: int, i: int) -> dict:
    return {
        "request": {"writer": writer, "index": i},
        "answer": {"decision": f"w{writer}i{i}", "cost": float(i)},
    }


def _writer(root: str, writer: int, per_writer: int):
    ledger = ShardedLedger(Path(root), shards=4)
    for i in range(per_writer):
        ledger.put_answer(_fingerprint(writer, i), _record(writer, i))
        if not ledger.save():
            os._exit(2)
    os._exit(0)


def _crash_victim(root: str, started):
    ledger = ShardedLedger(Path(root), shards=2)
    i = 0
    while True:
        ledger.put_answer(_fingerprint(9, i), _record(9, i))
        ledger.save()
        if i == 3:
            started.set()  # a few saves landed; parent may now kill us
        i += 1


class TestConcurrentWriters:
    def test_no_writer_loses_entries(self, tmp_path):
        root = tmp_path / "root"
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(str(root), w, PER_WRITER))
            for w in range(WRITERS)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        ledger = ShardedLedger(root)
        answers = dict(ledger.answers())
        assert len(answers) == WRITERS * PER_WRITER
        for w in range(WRITERS):
            for i in range(PER_WRITER):
                assert answers[_fingerprint(w, i)] == _record(w, i)
        assert ledger.salvaged == 0

    def test_equal_schedules_are_byte_identical(self, tmp_path):
        roots = [tmp_path / "a", tmp_path / "b"]
        for root in roots:
            ledger = ShardedLedger(root, shards=4)
            for w in range(2):
                for i in range(8):
                    ledger.put_answer(
                        _fingerprint(w, i), _record(w, i)
                    )
            assert ledger.save()
        names = sorted(p.name for p in roots[0].iterdir())
        assert names == sorted(p.name for p in roots[1].iterdir())
        assert MANIFEST in names
        for name in names:
            assert (roots[0] / name).read_bytes() == (
                roots[1] / name
            ).read_bytes()


class TestKillDuringPersistence:
    def test_sigkill_never_corrupts_a_shard(self, tmp_path):
        root = tmp_path / "root"
        ctx = mp.get_context("fork")
        started = ctx.Event()
        victim = ctx.Process(target=_crash_victim, args=(str(root), started))
        victim.start()
        assert started.wait(timeout=30)
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=30)
        assert victim.exitcode == -signal.SIGKILL

        # Every file on disk parses: the atomic-replace persistence
        # path leaves either the old or the new version, never a torn
        # one. The saves that completed before the kill are all there.
        for path in sorted(root.iterdir()):
            if path.name.endswith(".corrupt"):
                raise AssertionError(f"quarantined shard: {path}")
            if path.name.endswith(".lock"):
                continue  # advisory-lock sentinels, always empty
            json.loads(path.read_text())
        reopened = ShardedLedger(root)
        answers = dict(reopened.answers())
        assert reopened.salvaged == 0
        for i in range(4):
            assert answers[_fingerprint(9, i)] == _record(9, i)

    def test_reload_sees_another_process_saves(self, tmp_path):
        root = tmp_path / "root"
        reader = ShardedLedger(root, shards=2)
        assert dict(reader.answers()) == {}
        ctx = mp.get_context("fork")
        writer = ctx.Process(target=_writer, args=(str(root), 0, 5))
        writer.start()
        writer.join(timeout=60)
        assert writer.exitcode == 0
        reader.reload()
        assert len(dict(reader.answers())) == 5

    def test_interrupted_before_first_save_leaves_empty_root(
        self, tmp_path
    ):
        root = tmp_path / "root"
        ShardedLedger(root, shards=2)  # manifest only, no dirty shards
        names = sorted(
            p.name for p in root.iterdir()
            if not p.name.endswith(".lock")
        )
        assert names == [MANIFEST]
