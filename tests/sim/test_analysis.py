"""Tests for the trace-analysis helpers."""

import numpy as np
import pytest

from repro import Machine
from repro.algorithms import cannon, johnson, summa
from repro.sim.analysis import (
    communication_report,
    node_traffic_matrix,
    per_tensor_bytes,
    summarize,
)


@pytest.fixture(scope="module")
def traces():
    rng = np.random.default_rng(3)
    n = 24
    inputs = {"B": rng.random((n, n)), "C": rng.random((n, n))}
    m2 = Machine.flat(3, 3)
    m3 = Machine.flat(2, 2, 2)
    return {
        "cannon": (cannon(m2, n).execute(dict(inputs)).trace, m2),
        "summa": (summa(m2, n).execute(dict(inputs)).trace, m2),
        "johnson": (johnson(m3, n).execute(dict(inputs)).trace, m3),
    }


class TestPatternClassification:
    def test_cannon_is_systolic(self, traces):
        trace, machine = traces["cannon"]
        assert summarize(trace, machine).pattern == "systolic"

    def test_summa_is_broadcast(self, traces):
        trace, machine = traces["summa"]
        assert summarize(trace, machine).pattern == "broadcast"

    def test_johnson_counts_reductions(self, traces):
        trace, machine = traces["johnson"]
        summary = summarize(trace, machine)
        assert summary.reduction_bytes > 0


class TestAggregates:
    def test_per_tensor_bytes(self, traces):
        trace, _ = traces["summa"]
        tensors = per_tensor_bytes(trace)
        assert set(tensors) == {"B", "C"}
        assert tensors["B"] == tensors["C"]  # symmetric traffic

    def test_traffic_matrix_symmetry(self, traces):
        trace, _ = traces["cannon"]
        matrix = node_traffic_matrix(trace)
        assert matrix
        assert all(src != dst for src, dst in matrix)

    def test_report_renders(self, traces):
        trace, machine = traces["summa"]
        text = communication_report(trace, machine)
        assert "pattern" in text
        assert "broadcast" in text
