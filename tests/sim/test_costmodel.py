"""Cost model unit tests: collectives, rooflines, overlap."""

import pytest

from repro.machine.cluster import Cluster
from repro.runtime.trace import Copy, Step, Trace
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN
from repro.util.geometry import Interval, Rect


def copy_between(cluster, src, dst, nbytes, tensor="T", reduce=False):
    sp = cluster.processors[src]
    dp = cluster.processors[dst]
    return Copy(
        tensor=tensor,
        rect=Rect.of(Interval(0, nbytes // 8)),
        nbytes=nbytes,
        src_proc=sp,
        dst_proc=dp,
        src_mem=sp.memory,
        dst_mem=dp.memory,
        reduce=reduce,
    )


@pytest.fixture
def cpu4():
    return Cluster.cpu_cluster(4, sockets_per_node=1)


class TestCommTime:
    def test_empty(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        assert model.comm_time([]) == 0.0

    def test_p2p_bandwidth(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        nbytes = 250_000_000  # 0.25 GB over 25 GB/s -> 10 ms
        t = model.comm_time([copy_between(cpu4, 0, 1, nbytes)])
        assert t == pytest.approx(0.01, rel=0.1)

    def test_parallel_p2p_not_serialized(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        nbytes = 250_000_000
        # Disjoint pairs: same time as a single copy.
        copies = [
            copy_between(cpu4, 0, 1, nbytes, tensor="T1"),
            copy_between(cpu4, 2, 3, nbytes, tensor="T2"),
        ]
        t_pair = model.comm_time(copies)
        t_single = model.comm_time(copies[:1])
        assert t_pair == pytest.approx(t_single, rel=0.01)

    def test_common_source_contends(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        nbytes = 250_000_000
        # Distinct tensors from the same source serialize on its NIC.
        copies = [
            copy_between(cpu4, 0, 1, nbytes, tensor="T1"),
            copy_between(cpu4, 0, 2, nbytes, tensor="T2"),
            copy_between(cpu4, 0, 3, nbytes, tensor="T3"),
        ]
        t = model.comm_time(copies)
        assert t >= 3 * 0.009

    def test_broadcast_cheaper_than_distinct_sends(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        nbytes = 250_000_000
        bcast = [
            copy_between(cpu4, 0, d, nbytes, tensor="T") for d in (1, 2, 3)
        ]
        distinct = [
            copy_between(cpu4, 0, d, nbytes, tensor=f"T{d}") for d in (1, 2, 3)
        ]
        assert model.comm_time(bcast) < model.comm_time(distinct)

    def test_reduction_tree(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        nbytes = 250_000_000
        reds = [
            copy_between(cpu4, s, 0, nbytes, reduce=True) for s in (1, 2, 3)
        ]
        # Tree reduction: bounded by the relay factor, not fan-in.
        assert model.comm_time(reds) < 3 * 0.01 + 1e-3

    def test_gpu_direct_slower(self):
        gpu = Cluster.gpu_cluster(2, gpus_per_node=1)
        cpu = Cluster.cpu_cluster(2, sockets_per_node=1)
        nbytes = 250_000_000
        t_gpu = CostModel(gpu, LASSEN).comm_time(
            [copy_between(gpu, 0, 1, nbytes)]
        )
        t_cpu = CostModel(cpu, LASSEN).comm_time(
            [copy_between(cpu, 0, 1, nbytes)]
        )
        # 18 GB/s GPU-direct vs 25 GB/s host NIC (Section 7.1.2).
        assert t_gpu == pytest.approx(t_cpu * 25 / 18, rel=0.05)

    def test_nvlink_intra_node(self):
        gpu = Cluster.gpu_cluster(1, gpus_per_node=4)
        model = CostModel(gpu, LASSEN)
        nbytes = 250_000_000
        t = model.comm_time([copy_between(gpu, 0, 1, nbytes)])
        # NVLink at 60 GB/s, not the NIC.
        assert t == pytest.approx(nbytes / LASSEN.nvlink_bw, rel=0.1)


class TestComputeTime:
    def _step_with_work(self, cluster, flops=0.0, nbytes=0.0, kernel=None):
        step = Step(label="w")
        w = step.work_for(cluster.processors[0])
        w.add(flops, nbytes, kernel, False)
        return step

    def test_gemm_rate(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        step = self._step_with_work(cpu4, flops=1e12, kernel="blas_gemm")
        expected = 1e12 / (
            LASSEN.cpu_socket_gflops
            * LASSEN.runtime_core_fraction
            * LASSEN.gemm_efficiency
        )
        assert model.compute_time(step) == pytest.approx(expected)

    def test_bandwidth_roofline(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        # 1 flop per 1000 bytes: clearly bandwidth bound.
        step = self._step_with_work(cpu4, flops=1e6, nbytes=1e9)
        assert model.compute_time(step) == pytest.approx(
            1e9 / LASSEN.cpu_mem_bw
        )

    def test_naive_leaf_slower_than_gemm(self, cpu4):
        model = CostModel(cpu4, LASSEN)
        gemm = self._step_with_work(cpu4, flops=1e12, kernel="blas_gemm")
        naive = self._step_with_work(cpu4, flops=1e12, kernel=None)
        assert model.compute_time(naive) > model.compute_time(gemm)


class TestOverlap:
    def _trace(self, cluster):
        trace = Trace()
        step = trace.new_step("s")
        step.copies.append(copy_between(cluster, 0, 1, 250_000_000))
        w = step.work_for(cluster.processors[1])
        w.add(5e9, 0.0, "blas_gemm", False)
        return trace

    def test_overlap_takes_max(self, cpu4):
        trace = self._trace(cpu4)
        t_overlap = CostModel(cpu4, LASSEN).time_trace(trace).total_time
        t_blocking = CostModel(
            cpu4, LASSEN.with_(overlap=False)
        ).time_trace(trace).total_time
        assert t_blocking > t_overlap

    def test_report_rates(self, cpu4):
        trace = self._trace(cpu4)
        report = CostModel(cpu4, LASSEN).time_trace(trace)
        assert report.total_flops == 5e9
        assert report.gflops_per_node > 0
        assert report.num_nodes == 4
