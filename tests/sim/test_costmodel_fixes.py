"""Regression tests for the cost-model bugfixes.

* Mixed-kernel steps: flops are priced per kernel, not all at the last
  kernel's efficiency (the ``Work.add`` clobbering bug).
* Broadcast trees: ``ceil(fan_out/2)`` interior nodes forward the full
  payload (the seed spread half a payload over every receiver).
* Task overhead scales with ``Work.invocations`` (over-decomposition
  launches more tasks per processor per step).
* The vectorized ``comm_time`` matches on columnar and list inputs.
"""

import pytest

from repro.machine.cluster import Cluster
from repro.runtime.trace import Copy, CopyColumns, Step, Trace, Work
from repro.sim.costmodel import CostModel
from repro.sim.params import LASSEN
from repro.util.geometry import Interval, Rect


def copy_between(cluster, src, dst, nbytes, tensor="T", reduce=False):
    sp = cluster.processors[src]
    dp = cluster.processors[dst]
    return Copy(
        tensor=tensor,
        rect=Rect.of(Interval(0, nbytes // 8)),
        nbytes=nbytes,
        src_proc=sp,
        dst_proc=dp,
        src_mem=sp.memory,
        dst_mem=dp.memory,
        reduce=reduce,
    )


@pytest.fixture
def cpu1():
    return Cluster.cpu_cluster(1)


class TestMixedKernelPricing:
    def test_each_kernel_priced_at_own_efficiency(self, cpu1):
        model = CostModel(cpu1, LASSEN)
        rate = LASSEN.cpu_socket_gflops * LASSEN.runtime_core_fraction

        step = Step(label="mixed")
        work = step.work_for(cpu1.processors[0])
        work.add(1e12, 0.0, "blas_gemm", False)
        work.add(1e12, 0.0, None, False)  # a naive leaf in the same step

        expected = 1e12 / (rate * LASSEN.gemm_efficiency) + 1e12 / (
            rate * LASSEN.naive_leaf_efficiency
        )
        assert model.compute_time(step) == pytest.approx(expected)

    def test_seed_bug_would_underprice(self, cpu1):
        # The seed priced both terms at the last-added kernel's
        # efficiency; adding the naive leaf last must NOT discount the
        # GEMM flops (nor vice versa).
        model = CostModel(cpu1, LASSEN)
        rate = LASSEN.cpu_socket_gflops * LASSEN.runtime_core_fraction

        gemm_last = Step(label="gemm-last")
        w = gemm_last.work_for(cpu1.processors[0])
        w.add(1e12, 0.0, None, False)
        w.add(1e12, 0.0, "blas_gemm", False)

        naive_last = Step(label="naive-last")
        w = naive_last.work_for(cpu1.processors[0])
        w.add(1e12, 0.0, "blas_gemm", False)
        w.add(1e12, 0.0, None, False)

        t1 = model.compute_time(gemm_last)
        t2 = model.compute_time(naive_last)
        assert t1 == pytest.approx(t2)  # order-independent
        all_at_gemm = 2e12 / (rate * LASSEN.gemm_efficiency)
        assert t1 > all_at_gemm  # naive flops are not discounted

    def test_work_tracks_per_kernel_flops(self):
        w = Work()
        w.add(100.0, 0.0, "blas_gemm", False)
        w.add(50.0, 0.0, None, False)
        w.add(25.0, 0.0, "blas_gemm", False)
        assert w.kernel_flops == {"blas_gemm": 125.0, None: 50.0}
        assert w.flops == 175.0
        assert w.kernel == "blas_gemm"  # label survives a None add


class TestBroadcastForwarding:
    def test_interior_nodes_forward_full_payload(self):
        # Broadcast A: node 0 -> nodes 1..5 (fan-out 5, so ceil(5/2) = 3
        # interior receivers forward the full payload once). Node 1 is
        # interior in A *and* roots its own broadcast B to nodes 6..10,
        # so its out-link carries 1 forward + 2 root payloads = 3 — the
        # worst link. The seed charged every receiver only half a
        # forward, reporting 2.5 payloads on that link.
        cluster = Cluster.cpu_cluster(11, sockets_per_node=1)
        model = CostModel(cluster, LASSEN)
        nbytes = 250_000_000
        copies = [
            copy_between(cluster, 0, dst, nbytes, tensor="A")
            for dst in (1, 2, 3, 4, 5)
        ]
        copies += [
            copy_between(cluster, 1, dst, nbytes, tensor="B")
            for dst in (6, 7, 8, 9, 10)
        ]
        t = model.comm_time(copies)
        payload = nbytes / LASSEN.nic_bw
        stages = 3  # ceil(log2(5 + 1))
        assert t == pytest.approx(
            3 * payload + LASSEN.latency * stages, rel=1e-9
        )

    def test_small_fanout_does_not_forward(self):
        # Fan-out of 2 fits under the source's relay factor: receivers
        # never retransmit.
        cluster = Cluster.cpu_cluster(3, sockets_per_node=1)
        model = CostModel(cluster, LASSEN)
        nbytes = 250_000_000
        copies = [
            copy_between(cluster, 0, d, nbytes, tensor="T") for d in (1, 2)
        ]
        t = model.comm_time(copies)
        payload = nbytes / LASSEN.nic_bw
        stages = 2  # ceil(log2(3))
        assert t == pytest.approx(
            2 * payload + LASSEN.latency * stages, rel=1e-9
        )


class TestTaskOverheadScaling:
    def _trace_with_invocations(self, cluster, invocations):
        trace = Trace()
        step = trace.new_step("s")
        work = step.work_for(cluster.processors[0])
        for _ in range(invocations):
            work.add(1e9, 0.0, "blas_gemm", False)
        return trace

    def test_overhead_scales_with_invocations(self, cpu1):
        model = CostModel(cpu1, LASSEN)
        t1 = model.time_trace(self._trace_with_invocations(cpu1, 1))
        t4 = model.time_trace(self._trace_with_invocations(cpu1, 4))
        # 4 leaf launches: 4x the flops and 3 extra task overheads.
        assert t4.total_time == pytest.approx(
            4 * (t1.total_time - LASSEN.task_overhead)
            + 4 * LASSEN.task_overhead
        )

    def test_step_without_work_pays_one_overhead(self, cpu1):
        model = CostModel(cpu1, LASSEN)
        trace = Trace()
        trace.new_step("fetch-only")
        assert model.time_trace(trace).total_time == pytest.approx(
            LASSEN.task_overhead
        )


class TestColumnarEquivalence:
    def test_columns_match_copy_list(self):
        cluster = Cluster.cpu_cluster(4, sockets_per_node=2)
        model = CostModel(cluster, LASSEN)
        copies = [
            copy_between(cluster, 0, 2, 8_000_000, tensor="A"),
            copy_between(cluster, 0, 4, 8_000_000, tensor="A"),
            copy_between(cluster, 0, 1, 8_000_000, tensor="A"),  # intra
            copy_between(cluster, 3, 0, 16_000_000, tensor="B", reduce=True),
            copy_between(cluster, 5, 0, 16_000_000, tensor="B", reduce=True),
        ]
        via_list = model.comm_time(copies)
        via_columns = model.comm_time(
            copies, columns=CopyColumns.from_copies(copies)
        )
        assert via_list == via_columns

    def test_step_caches_columns(self):
        cluster = Cluster.cpu_cluster(2, sockets_per_node=1)
        step = Step(label="s")
        step.copies.append(copy_between(cluster, 0, 1, 800))
        cols = step.columns()
        assert step.columns() is cols  # cached
        step.copies.append(copy_between(cluster, 1, 0, 800))
        cols2 = step.columns()  # invalidated by growth
        assert cols2.n == 2
