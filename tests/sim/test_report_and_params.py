"""Tests for SimReport derived metrics and parameter variants."""

import pytest

from repro.sim.params import (
    COSMA_PARAMS,
    COSMA_RESTRICTED_PARAMS,
    CTF_PARAMS,
    LASSEN,
    SCALAPACK_PARAMS,
)
from repro.sim.report import SimReport


def make_report(**overrides):
    base = dict(
        total_time=2.0,
        comm_time=0.5,
        compute_time=1.8,
        total_flops=4e12,
        bytes_touched=1e11,
        inter_node_bytes=5e9,
        total_copy_bytes=8e9,
        num_nodes=4,
    )
    base.update(overrides)
    return SimReport(**base)


class TestSimReport:
    def test_gflops_per_node(self):
        rep = make_report()
        assert rep.gflops_per_node == pytest.approx(4e12 / 2.0 / 4 / 1e9)

    def test_gbytes_per_node(self):
        rep = make_report()
        assert rep.gbytes_per_node == pytest.approx(1e11 / 2.0 / 4 / 1e9)

    def test_zero_time_guard(self):
        rep = make_report(total_time=0.0)
        assert rep.gflops_per_node == 0.0
        assert rep.gbytes_per_node == 0.0

    def test_negative_time_guard(self):
        # total_time <= 0 must never divide: rates clamp to zero for
        # any non-positive time, not just exactly zero.
        rep = make_report(total_time=-1.5)
        assert rep.gflops_per_node == 0.0
        assert rep.gbytes_per_node == 0.0

    def test_empty_memory_high_water(self):
        rep = make_report(memory_high_water={})
        assert rep.max_memory_bytes == 0

    def test_breakdown_defaults_to_none_and_ignored_by_eq(self):
        from repro.sim.report import PhaseBreakdown

        plain = make_report()
        assert plain.breakdown is None
        rich = make_report()
        rich.breakdown = PhaseBreakdown(phases=())
        assert plain == rich

    def test_max_memory(self):
        rep = make_report(memory_high_water={"a": 10, "b": 25})
        assert rep.max_memory_bytes == 25
        assert make_report().max_memory_bytes == 0

    def test_repr(self):
        assert "GF/s/node" in repr(make_report())


class TestParams:
    def test_with_replaces(self):
        p = LASSEN.with_(overlap=False)
        assert not p.overlap
        assert p.nic_bw == LASSEN.nic_bw
        assert LASSEN.overlap  # original untouched (frozen)

    def test_lassen_physical_facts(self):
        # The paper's measured numbers embedded in the model.
        assert LASSEN.nic_bw == 25e9
        assert LASSEN.nic_bw_gpu_direct == 18e9  # "18/25 GB/s"
        assert LASSEN.runtime_core_fraction == pytest.approx(0.9)  # 36/40

    def test_baseline_variants_differ_where_stated(self):
        # COSMA: no runtime tax, tuned collectives.
        assert COSMA_PARAMS.runtime_core_fraction == 1.0
        assert COSMA_PARAMS.collective_efficiency < 1.0
        # Restricted variant re-applies the DISTAL core budget.
        assert COSMA_RESTRICTED_PARAMS.runtime_core_fraction == pytest.approx(
            0.9
        )
        # The MPI libraries block on collectives.
        assert not SCALAPACK_PARAMS.overlap
        assert not CTF_PARAMS.overlap
        # CTF's generic leaves are far below fused kernels.
        assert CTF_PARAMS.naive_leaf_efficiency < LASSEN.naive_leaf_efficiency

    def test_frozen(self):
        with pytest.raises(Exception):
            LASSEN.overlap = False
