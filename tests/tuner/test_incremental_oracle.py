"""Cross-candidate incremental simulation (`tuner/oracle.py`).

Candidates sharing a phase structure — same grid, formats, request
structure, different substituted leaf kernel — must execute one trace
and re-price the rest; the hit counts must land in the tuning ledger
without breaking its byte-determinism.
"""

import json

import pytest

from repro.bench.cache import SIM_CACHE
from repro.machine.cluster import Cluster
from repro.tuner.oracle import SKELETONS, phase_fingerprint
from repro.tuner.search import tune
from repro.tuner.workloads import matmul


@pytest.fixture(autouse=True)
def fresh_caches():
    SIM_CACHE.clear()
    SKELETONS.clear()
    yield
    SIM_CACHE.clear()
    SKELETONS.clear()


class TestIncrementalOracle:
    def test_fewer_trace_executions_than_candidates(self, tmp_path):
        # static_prune off: the analyzer would otherwise decide the
        # loops-leaf candidates without simulating, which is exactly
        # the repricing population this test pins down.
        result = tune(
            matmul(4096), Cluster.cpu_cluster(8), jobs=1,
            static_prune=False,
            ledger_path=tmp_path / "ledger.json",
        )
        search = result.search
        assert search.evaluations > 0
        # The gemm-vs-loops leaf axis shares every phase structure, so
        # at most half the scored candidates execute a trace.
        assert search.trace_executions < search.evaluations
        assert search.repriced > 0
        assert search.trace_executions == search.structures

    def test_static_pruning_replaces_repricing(self, tmp_path):
        # Default path: the same leaf-sharing candidates are now pruned
        # statically — zero simulations — and the counters say so.
        result = tune(
            matmul(4096), Cluster.cpu_cluster(8), jobs=1,
            ledger_path=tmp_path / "ledger.json",
        )
        search = result.search
        assert search.pruned_static > 0
        assert search.pruned_static >= search.space_size // 5
        stats = json.loads(
            (tmp_path / "ledger.json").read_text()
        )["oracle_stats"]
        assert stats["pruned_static"] == search.pruned_static
        assert stats["scored"] == stats["simulated"] + stats["ledger_hits"]

    def test_pruning_preserves_the_winner(self):
        cluster = Cluster.cpu_cluster(4)
        pruned = tune(matmul(2048), cluster, strategy="exhaustive")
        unpruned = tune(
            matmul(2048), cluster, strategy="exhaustive",
            static_prune=False,
        )
        assert pruned.decision == unpruned.decision
        assert pruned.search.best.cost == unpruned.search.best.cost

    def test_hit_counts_logged_in_ledger(self, tmp_path):
        path = tmp_path / "ledger.json"
        tune(matmul(4096), Cluster.cpu_cluster(8), jobs=1, ledger_path=path)
        data = json.loads(path.read_text())
        stats = data["oracle_stats"]
        assert stats["scored"] == stats["simulated"] + stats["ledger_hits"]
        assert stats["structure_hits"] > 0
        assert stats["structures"] < stats["simulated"]

    def test_repriced_reports_match_executed(self):
        # Re-pricing a cached skeleton must reproduce exactly what a
        # fresh execution reports: clear the caches, evaluate the same
        # space twice, compare costs decision by decision.
        cluster = Cluster.cpu_cluster(4)
        first = tune(matmul(2048), cluster, strategy="exhaustive")
        SIM_CACHE.clear()
        SKELETONS.clear()
        second = tune(matmul(2048), cluster, strategy="exhaustive")
        costs_a = {
            o.decision: o.cost for o in first.search.ranked
        }
        costs_b = {
            o.decision: o.cost for o in second.search.ranked
        }
        assert costs_a == costs_b
        assert first.decision == second.decision

    def test_fingerprint_masks_leaf_kernel_only(self):
        from repro.core.kernel import compile_kernel
        from repro.machine.grid import Grid
        from repro.machine.machine import Machine
        from repro.tuner.space import enumerate_space, realize

        cluster = Cluster.cpu_cluster(4)
        assignment = matmul(1024)
        space = enumerate_space(assignment, cluster.num_processors)
        by_key = {}
        for decision in space:
            machine = Machine(cluster, Grid(*decision.grid))
            schedule, _ = realize(assignment, machine, decision)
            kernel = compile_kernel(schedule, machine)
            key = phase_fingerprint(kernel, True, "orbit")
            by_key.setdefault(key, set()).add(decision.leaf)
        # At least one structure is shared by both leaf choices, and no
        # two different comm/format structures collapse to one key.
        assert any(len(leaves) > 1 for leaves in by_key.values())
        assert len(by_key) < len(space)
