"""Crash-hardened tuning-ledger loads: salvage and quarantine."""

import json

import pytest

from repro.sim.params import LASSEN
from repro.tuner.oracle import (
    EvalOutcome,
    Oracle,
    TuningLedger,
    workload_signature,
)
from repro.machine.cluster import MemoryKind
from repro.tuner.space import enumerate_space
from repro.tuner.workloads import lean_cluster, matmul


@pytest.fixture
def populated(tmp_path):
    """A saved ledger with real oracle entries."""
    path = tmp_path / "ledger.json"
    cluster = lean_cluster(4)
    assignment = matmul(64)
    ledger = TuningLedger(path)
    oracle = Oracle(cluster, params=LASSEN, ledger=ledger)
    space = enumerate_space(assignment, cluster.num_processors)
    oracle.evaluate(assignment, space[:4])
    assert ledger.save()
    return path, cluster, assignment


class TestSalvage:
    def test_clean_ledger_loads_without_salvage(self, populated):
        path, _, _ = populated
        ledger = TuningLedger(path)
        assert ledger.salvaged == 0
        assert len(ledger) == 4
        assert not path.with_name(path.name + ".corrupt").exists()

    def test_truncated_ledger_salvages_complete_entries(self, populated):
        path, _, _ = populated
        text = path.read_text()
        # Tear the file mid-way through the last entry (a torn write on
        # a filesystem without atomic replace).
        path.write_text(text[: int(len(text) * 0.8)])
        ledger = TuningLedger(path)
        assert 0 < ledger.salvaged < 4
        assert len(ledger) == ledger.salvaged
        for key, record in ledger.entries.items():
            assert "/" in key
            assert "decision" in record and "cost" in record

    def test_corrupt_original_is_quarantined(self, populated):
        path, _, _ = populated
        torn = path.read_text()[:-30]
        path.write_text(torn)
        TuningLedger(path)
        quarantine = path.with_name(path.name + ".corrupt")
        assert quarantine.exists()
        assert quarantine.read_text() == torn

    def test_salvaged_entries_round_trip(self, populated):
        path, cluster, assignment = populated
        reference = TuningLedger(path)
        path.write_text(path.read_text()[:-30])
        ledger = TuningLedger(path)
        wsig = workload_signature(
            assignment, cluster, LASSEN,
            MemoryKind.SYSTEM_MEM, "orbit", True,
        )
        hits = 0
        for key in ledger.entries:
            decision_key = key.split("/", 1)[1]
            from repro.tuner.space import Decision

            outcome = ledger.get(wsig, Decision.decode(decision_key))
            assert isinstance(outcome, EvalOutcome)
            assert outcome == reference.get(
                wsig, Decision.decode(decision_key)
            )
            hits += 1
        assert hits == ledger.salvaged

    def test_garbage_file_loads_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("not json at all {{{")
        ledger = TuningLedger(path)
        assert len(ledger) == 0
        assert ledger.salvaged == 0
        assert path.with_name(path.name + ".corrupt").exists()

    def test_save_after_salvage_heals_the_file(self, populated):
        path, _, _ = populated
        path.write_text(path.read_text()[:-30])
        ledger = TuningLedger(path)
        salvaged = len(ledger)
        assert ledger.save()
        healed = json.loads(path.read_text())
        assert healed["version"] == TuningLedger.VERSION
        assert len(healed["entries"]) == salvaged
        # And the healed file loads cleanly.
        again = TuningLedger(path)
        assert again.salvaged == 0
        assert len(again) == salvaged

    def test_wrong_shape_json_loads_empty(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text(json.dumps([1, 2, 3]))
        ledger = TuningLedger(path)
        assert len(ledger) == 0
        # Valid JSON of the wrong shape is not "corrupt": nothing to
        # salvage, nothing quarantined.
        assert not path.with_name(path.name + ".corrupt").exists()
