"""The simulate-oracle: caching, ledger persistence, parallel fan-out."""

import json


from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.tuner.oracle import (
    EvalOutcome,
    INFEASIBLE,
    Oracle,
    TuningLedger,
    workload_signature,
)
from repro.tuner.space import Decision, enumerate_space, from_heuristic
from repro.tuner.workloads import matmul
from repro.sim.params import LASSEN

GIB = 1024 ** 3


def tiny_cluster(nodes=2, mem_bytes=None):
    if mem_bytes is None:
        return Cluster.cpu_cluster(nodes)
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=2,
        proc_kind=ProcessorKind.CPU_SOCKET,
        proc_mem_kind=MemoryKind.SYSTEM_MEM,
        proc_mem_capacity=mem_bytes,
        system_mem_capacity=mem_bytes,
    )


class TestOracle:
    def test_evaluates_in_input_order(self):
        cluster = tiny_cluster()
        stmt = matmul(256)
        decisions = enumerate_space(stmt, 4)[:6]
        oracle = Oracle(cluster, static_prune=False)
        outcomes = oracle.evaluate(stmt, decisions)
        assert [o.decision for o in outcomes] == decisions
        assert all(o.feasible for o in outcomes)
        assert all(o.cost > 0 for o in outcomes)

    def test_static_pruning_skips_dominated_candidates(self):
        # With the analyzer on (the default), loops-leaf candidates
        # whose gemm twin shares the trace are decided statically; they
        # are neither simulated nor counted as errors.
        cluster = tiny_cluster()
        stmt = matmul(256)
        decisions = enumerate_space(stmt, 4)
        oracle = Oracle(cluster)
        outcomes = oracle.evaluate(stmt, decisions)
        pruned = [o for o in outcomes if o.pruned]
        assert pruned and oracle.pruned_static == len(pruned)
        assert oracle.errors == 0
        assert all(not o.feasible for o in pruned)

    def test_oom_candidates_are_infeasible_not_fatal(self):
        # 32 MiB nodes: the heuristic's replicated row/column panels
        # (~50 MB/node) cannot fit, the fully tiled systolic layout
        # (~30 MB/node) can.
        cluster = tiny_cluster(nodes=32, mem_bytes=32 * 1024 * 1024)
        stmt = matmul(4096)
        pull = from_heuristic(stmt, (8, 8))
        cannon = Decision(
            grid=(8, 8), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(0, 1), tiled=("B", "C"), step_comm=("B", "C"),
            leaf="gemm",
        )
        outcomes = Oracle(cluster).evaluate(stmt, [pull, cannon])
        assert outcomes[0].oom and outcomes[0].cost == INFEASIBLE
        assert outcomes[1].feasible

    def test_does_not_clobber_caller_formats(self):
        cluster = tiny_cluster()
        stmt = matmul(256)
        before = {t.name: t.format for t in stmt.tensors()}
        Oracle(cluster).evaluate(stmt, enumerate_space(stmt, 4)[:4])
        after = {t.name: t.format for t in stmt.tensors()}
        assert before == after

    def test_parallel_jobs_match_sequential(self):
        cluster = tiny_cluster(nodes=4)
        stmt = matmul(512)
        decisions = enumerate_space(stmt, 8)[:12]
        seq = Oracle(cluster, jobs=1).evaluate(stmt, decisions)
        par = Oracle(cluster, jobs=4).evaluate(stmt, decisions)
        assert [(o.decision, o.cost, o.oom) for o in seq] == [
            (o.decision, o.cost, o.oom) for o in par
        ]


class TestLedger:
    def test_retune_is_incremental(self, tmp_path):
        path = tmp_path / "ledger.json"
        cluster = tiny_cluster()
        stmt = matmul(256)
        decisions = enumerate_space(stmt, 4)[:8]

        first = Oracle(cluster, ledger=TuningLedger(path))
        first.evaluate(stmt, decisions)
        assert first.simulated == len(decisions)

        second = Oracle(cluster, ledger=TuningLedger(path))
        outcomes = second.evaluate(stmt, decisions)
        assert second.simulated == 0
        assert second.ledger.hits == len(decisions)
        assert len(outcomes) == len(decisions)

    def test_ledger_keys_are_workload_scoped(self, tmp_path):
        path = tmp_path / "ledger.json"
        cluster = tiny_cluster()
        decisions = enumerate_space(matmul(256), 4)[:3]
        oracle = Oracle(cluster, ledger=TuningLedger(path))
        oracle.evaluate(matmul(256), decisions)
        # A different problem size is a different workload: no hits.
        other = Oracle(cluster, ledger=TuningLedger(path))
        other.evaluate(matmul(512), decisions)
        assert other.simulated == len(decisions)
        assert len(other.ledger) == 2 * len(decisions)

    def test_save_is_atomic_and_sorted(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = TuningLedger(path)
        ledger.put("sig", EvalOutcome(
            decision=Decision(grid=(2,), dist=("i",)), cost=1.0,
        ))
        ledger.save()
        data = json.loads(path.read_text())
        assert data["version"] == 1
        assert list(data["entries"]) == sorted(data["entries"])
        assert not list(tmp_path.glob("*.tmp"))

    def test_concurrent_saves_merge_instead_of_clobbering(self, tmp_path):
        """Two ledgers sharing a path (concurrent tunes) must not drop
        each other's entries: save() reloads and merges under the
        advisory lock."""
        path = tmp_path / "ledger.json"
        first = TuningLedger(path)
        second = TuningLedger(path)  # loaded before first saves
        first.put("w1", EvalOutcome(
            decision=Decision(grid=(2,), dist=("i",)), cost=1.0,
        ))
        assert first.save()
        second.put("w2", EvalOutcome(
            decision=Decision(grid=(4,), dist=("j",)), cost=2.0,
        ))
        assert second.save()
        merged = TuningLedger(path)
        assert len(merged) == 2

    def test_corrupt_ledger_starts_fresh(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{ not json")
        ledger = TuningLedger(path)
        assert len(ledger) == 0

    def test_outcome_record_roundtrip(self):
        for outcome in (
            EvalOutcome(
                decision=Decision(grid=(4, 2), dist=("i", "j")),
                cost=0.125, comm_time=0.02, compute_time=0.1,
                inter_node_bytes=1e9, max_memory_bytes=2e9,
            ),
            EvalOutcome(
                decision=Decision(grid=(4,), dist=("k",)),
                cost=INFEASIBLE, oom=True,
            ),
        ):
            assert EvalOutcome.from_record(outcome.to_record()) == outcome


class TestWorkloadSignature:
    def test_distinct_per_axis(self):
        c1, c2 = tiny_cluster(2), tiny_cluster(4)
        base = workload_signature(
            matmul(256), c1, LASSEN, MemoryKind.SYSTEM_MEM, "orbit", True
        )
        assert base == workload_signature(
            matmul(256), c1, LASSEN, MemoryKind.SYSTEM_MEM, "orbit", True
        )
        assert base != workload_signature(
            matmul(512), c1, LASSEN, MemoryKind.SYSTEM_MEM, "orbit", True
        )
        assert base != workload_signature(
            matmul(256), c2, LASSEN, MemoryKind.SYSTEM_MEM, "orbit", True
        )
        assert base != workload_signature(
            matmul(256), c1, LASSEN.with_(overlap=False),
            MemoryKind.SYSTEM_MEM, "orbit", True,
        )
