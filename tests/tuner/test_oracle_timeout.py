"""Per-candidate wall-clock timeouts in the tuner oracle."""

import signal
import time

import pytest

from repro.sim.params import LASSEN
from repro.tuner import oracle as oracle_mod
from repro.tuner.oracle import (
    Oracle,
    _CandidateTimeout,
    _deadline,
    evaluate_one,
)
from repro.machine.cluster import MemoryKind
from repro.tuner.search import tune
from repro.tuner.space import enumerate_space
from repro.tuner.workloads import lean_cluster, matmul


class TestDeadline:
    def test_expires_on_slow_work(self):
        with pytest.raises(_CandidateTimeout):
            with _deadline(0.05):
                time.sleep(2.0)

    def test_fast_work_unaffected(self):
        with _deadline(5.0):
            value = sum(range(1000))
        assert value == 499500
        # The timer is disarmed on exit.
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_none_and_zero_are_noops(self):
        with _deadline(None):
            pass
        with _deadline(0):
            pass

    def test_nested_deadline_keeps_outer_timer(self):
        with pytest.raises(_CandidateTimeout):
            with _deadline(0.05):
                with _deadline(60.0):  # must not overwrite the 0.05s
                    time.sleep(2.0)

    def test_restores_previous_handler(self):
        before = signal.getsignal(signal.SIGALRM)
        with _deadline(5.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is before


class TestEvaluateTimeout:
    @pytest.fixture
    def problem(self):
        cluster = lean_cluster(4)
        assignment = matmul(64)
        decision = enumerate_space(
            assignment, cluster.num_processors
        )[0]
        return assignment, cluster, decision

    def test_stuck_candidate_becomes_error_outcome(
        self, problem, monkeypatch
    ):
        assignment, cluster, decision = problem

        def stuck(*args, **kwargs):
            time.sleep(30)

        monkeypatch.setattr(oracle_mod, "oracle_simulate", stuck)
        outcome = evaluate_one(
            assignment, cluster, decision, LASSEN,
            MemoryKind.SYSTEM_MEM, "orbit", True,
            static_prune=False, timeout_s=0.1,
        )
        assert not outcome.feasible
        assert "Timeout" in outcome.error
        assert "0.1s" in outcome.error
        assert not outcome.oom
        assert not outcome.pruned

    def test_generous_timeout_is_invisible(self, problem):
        assignment, cluster, decision = problem
        import copy

        timed = evaluate_one(
            copy.deepcopy(assignment), cluster, decision, LASSEN,
            MemoryKind.SYSTEM_MEM, "orbit", True, timeout_s=60.0,
        )
        plain = evaluate_one(
            copy.deepcopy(assignment), cluster, decision, LASSEN,
            MemoryKind.SYSTEM_MEM, "orbit", True,
        )
        assert timed.cost == plain.cost
        assert timed.error == plain.error == ""

    def test_oracle_counts_timeouts_as_errors(
        self, problem, monkeypatch
    ):
        assignment, cluster, _ = problem

        def stuck(*args, **kwargs):
            time.sleep(30)

        monkeypatch.setattr(oracle_mod, "oracle_simulate", stuck)
        oracle = Oracle(
            cluster, params=LASSEN, static_prune=False, timeout_s=0.1
        )
        space = enumerate_space(assignment, cluster.num_processors)
        outcomes = oracle.evaluate(assignment, space[:2])
        assert oracle.errors == 2
        assert all("Timeout" in o.error for o in outcomes)

    def test_tune_forwards_timeout(self, problem):
        assignment, cluster, _ = problem
        result = tune(
            assignment, cluster, LASSEN,
            strategy="exhaustive", timeout_s=120.0,
        )
        # A generous budget changes nothing about the search result.
        assert result.search.best.feasible
        assert result.search.errors == 0
