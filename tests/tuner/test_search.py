"""Search strategies: determinism, seeding, successive halving."""

import pytest

from repro.machine.cluster import Cluster, MemoryKind, ProcessorKind
from repro.sim.params import LASSEN
from repro.tuner.search import (
    balanced_grid,
    default_seed_grid,
    tune,
)
from repro.tuner.workloads import matmul, matmul_rect

GIB = 1024 ** 3


def constrained_cluster(nodes, mem_bytes):
    return Cluster.build(
        num_nodes=nodes,
        procs_per_node=2,
        proc_kind=ProcessorKind.CPU_SOCKET,
        proc_mem_kind=MemoryKind.SYSTEM_MEM,
        proc_mem_capacity=mem_bytes,
        system_mem_capacity=mem_bytes,
    )


class TestBalancedGrid:
    def test_square_when_possible(self):
        assert balanced_grid(16, 2) == (4, 4)
        assert balanced_grid(64, 3) == (4, 4, 4)

    def test_most_balanced_otherwise(self):
        assert balanced_grid(8, 2) == (4, 2)
        assert balanced_grid(12, 2) == (4, 3)

    def test_one_dim(self):
        assert balanced_grid(7, 1) == (7,)

    def test_default_seed_grid_uses_output_rank(self):
        assert default_seed_grid(matmul(64), 16) == (4, 4)


class TestTune:
    def test_never_worse_than_heuristic(self):
        cluster = Cluster.cpu_cluster(2)
        result = tune(matmul(1024), cluster, strategy="exhaustive")
        search = result.search
        assert search.best.cost <= search.seed_outcome.cost
        assert result.report is not None
        assert result.report.total_time == pytest.approx(search.best.cost)

    def test_beats_heuristic_under_memory_pressure(self):
        # Nodes sized so the heuristic's replicated inputs OOM: the
        # tuner must find a feasible schedule, i.e. strictly improve.
        cluster = constrained_cluster(8, 96 * 1024 * 1024)
        result = tune(matmul(4096), cluster, strategy="exhaustive")
        search = result.search
        assert not search.seed_outcome.feasible  # heuristic OOMs
        assert search.best.feasible
        assert search.improved
        assert result.report is not None

    def test_beam_and_exhaustive_agree_on_small_space(self):
        cluster = Cluster.cpu_cluster(4)
        stmt = lambda: matmul(2048)  # noqa: E731
        full = tune(stmt(), cluster, strategy="exhaustive")
        beam = tune(stmt(), cluster, strategy="beam", beam_width=8)
        assert beam.search.best.cost <= full.search.best.cost * (1 + 1e-12)

    def test_deterministic_ledgers(self, tmp_path):
        """Two runs with the same seed write byte-identical ledgers."""
        cluster = Cluster.cpu_cluster(8)
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        results = [
            tune(
                matmul(4096), cluster, strategy="beam", beam_width=4,
                coarse_procs=4, seed=7, ledger_path=path,
            )
            for path in paths
        ]
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert results[0].decision == results[1].decision

    def test_different_seed_still_contains_heuristic(self):
        cluster = Cluster.cpu_cluster(4)
        for seed in (0, 1):
            result = tune(
                matmul(2048), cluster, strategy="beam", beam_width=2,
                coarse_procs=2, seed=seed,
            )
            assert result.search.best.cost <= result.search.seed_outcome.cost

    def test_rect_matmul_keeps_output_stationary(self):
        """Fig. 9 rediscovery, rectangular: with a small contraction
        dimension the winner pulls inputs toward a stationary output
        (no rotation, no sequencing)."""
        cluster = Cluster.cpu_cluster(8)
        result = tune(
            matmul_rect(16384, 256, 16384), cluster, strategy="exhaustive"
        )
        assert result.decision.seq is None
        assert result.decision.rotate == ()
        out_names = {"i", "j"}
        assert set(result.decision.dist) <= out_names

    def test_square_matmul_rediscovers_systolic_rotation(self):
        """Fig. 9 rediscovery, square: with node memory that rules out
        every replication-heavy layout (the heuristic's pull, Johnson's
        3-D replicas) and blocking communication (comm visible), the
        exhaustive winner is a tiled systolic schedule — Cannon/PUMMA's
        rotation pattern, found from scratch."""
        cluster = constrained_cluster(32, 128 * 1024 * 1024)
        result = tune(
            matmul(8192),
            cluster,
            LASSEN.with_(overlap=False),
            strategy="exhaustive",
            jobs=4,
        )
        decision = result.search.best.decision
        assert not result.search.seed_outcome.feasible  # pull OOMs
        assert decision.tiled  # tiled Figure 9 layout
        assert decision.seq is not None  # sequenced k loop
        assert decision.rotate  # systolic rotation
        # ... and it beats the SUMMA-style broadcast alternative.
        from repro.tuner.oracle import Oracle
        from repro.tuner.space import Decision, normalize

        summa = normalize(matmul(8192), Decision(
            grid=decision.grid, dist=decision.dist, seq=decision.seq,
            steps_dim=decision.steps_dim, rotate=(),
            tiled=decision.tiled, step_comm=decision.step_comm,
            leaf=decision.leaf,
        ))
        oracle = Oracle(cluster, params=LASSEN.with_(overlap=False))
        (alt,) = oracle.evaluate(matmul(8192), [summa])
        assert result.search.best.cost <= alt.cost

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            tune(matmul(256), Cluster.cpu_cluster(1), strategy="magic")
