"""The schedule space: decision vectors, canonicalization, replay."""

import pytest

from repro import Machine, compile_kernel
from repro.core.autoschedule import auto_schedule
from repro.tuner.space import (
    Decision,
    canonicalize,
    coarsen,
    enumerate_space,
    factorizations,
    formats_for,
    from_heuristic,
    normalize,
    realize,
    scale_assignment,
)
from repro.tuner.workloads import matmul, mttkrp, ttm, ttv
from repro.util.errors import ScheduleError


def cannon_decision(grid=(2, 2)):
    return Decision(
        grid=grid, dist=("i", "j"), seq="k", steps_dim=0, rotate=(0, 1),
        tiled=("B", "C"), step_comm=("B", "C"), leaf="gemm",
    )


class TestFactorizations:
    def test_all_orderings(self):
        assert sorted(factorizations(8, 3)) == [
            (2, 2, 2), (2, 4), (4, 2), (8,),
        ]

    def test_max_dims_caps_rank(self):
        assert sorted(factorizations(8, 2)) == [(2, 4), (4, 2), (8,)]

    def test_single_processor(self):
        assert factorizations(1, 3) == [(1,)]


class TestCanonicalization:
    def test_grid_dim_permutation_collapses(self):
        a = Decision(grid=(4, 2), dist=("i", "j"))
        b = Decision(grid=(2, 4), dist=("j", "i"))
        assert canonicalize(a) == canonicalize(b)

    def test_permutation_carries_rotation_and_steps(self):
        a = Decision(
            grid=(4, 2), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(0,), tiled=("B",), step_comm=("B",),
        )
        b = Decision(
            grid=(2, 4), dist=("j", "i"), seq="k", steps_dim=1,
            rotate=(1,), tiled=("B",), step_comm=("B",),
        )
        assert canonicalize(a) == canonicalize(b)

    def test_rotation_sources_are_a_set(self):
        # rotate(k, [io, jo]) == rotate(k, [jo, io]) by construction.
        a = canonicalize(cannon_decision())
        b = canonicalize(
            Decision(
                grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
                rotate=(1, 0), tiled=("B", "C"), step_comm=("B", "C"),
                leaf="gemm",
            )
        )
        assert a == b

    def test_equal_extent_dims_collapse_symmetric_rotations(self):
        # On a square grid, rotating by dim 0 with dist (i, j) is the
        # same class as rotating by dim 1 with dist (j, i).
        a = Decision(
            grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(0,), tiled=("B",), step_comm=("B",),
        )
        b = Decision(
            grid=(2, 2), dist=("j", "i"), seq="k", steps_dim=0,
            rotate=(1,), tiled=("B",), step_comm=("B",),
        )
        assert canonicalize(a) == canonicalize(b)
        # ... but rotating dim 1 with the SAME dist is a different
        # schedule (a different input stays put).
        c = Decision(
            grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(1,), tiled=("B",), step_comm=("B",),
        )
        assert canonicalize(a) != canonicalize(c)

    def test_dead_sequencing_folds_away(self):
        # A sequenced loop nothing communicates at is the one-shot
        # candidate.
        a = Decision(
            grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(0, 1), tiled=("B",), step_comm=(),
        )
        assert canonicalize(a).seq is None
        assert canonicalize(a).rotate == ()

    def test_identity_rotation_dropped(self):
        a = Decision(
            grid=(4, 1), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(0, 1), tiled=("B",), step_comm=("B",),
        )
        canon = canonicalize(a)
        # Only the extent-4 dimension's rotation survives (rotating an
        # extent-1 dimension is the identity).
        assert len(canon.rotate) == 1
        assert all(canon.grid[d] > 1 for d in canon.rotate)

    def test_normalize_folds_untileable_inputs(self):
        stmt = matmul(64)
        d = Decision(
            grid=(2, 2), dist=("i", "k"), tiled=("B",),
        )
        # B(i, k) is fully indexed by the distributed vars: not tileable.
        assert normalize(stmt, d).tiled == ()

    def test_normalize_folds_gemm_for_elementwise(self):
        stmt = ttv(16)
        d = Decision(grid=(2, 2), dist=("i", "j"), leaf="gemm")
        # TTV *is* a contraction (k reduces), so gemm survives ...
        assert normalize(stmt, d).leaf == "gemm"
        # ... but an elementwise statement folds to loops.
        from repro.ir.expr import index_vars
        from repro.ir.tensor import Assignment, TensorVar

        A = TensorVar("A", (16, 16))
        B = TensorVar("B", (16, 16))
        i, j = index_vars("i j")
        ew = Assignment(A[i, j], B[i, j] * B[i, j])
        assert normalize(ew, d).leaf == "loops"

    def test_encode_decode_roundtrip(self):
        for d in (
            cannon_decision(),
            Decision(grid=(8,), dist=("i",)),
            Decision(grid=(2, 2, 2), dist=("i", "j", "k"),
                     output_style="replicate"),
        ):
            assert Decision.decode(d.encode()) == d


class TestSpaceSizes:
    """Pinned canonical space sizes; changes here are intentional
    search-space changes, not incidental drift."""

    @pytest.mark.parametrize(
        "build,procs,expected",
        [
            (lambda: matmul(64), 4, 76),
            (lambda: matmul(64), 8, 216),
            (lambda: ttm(32, 16), 4, 148),
            (lambda: ttm(32, 16), 8, 544),
            (lambda: mttkrp(32, 16), 4, 488),
            (lambda: ttv(32), 4, 40),
        ],
    )
    def test_pinned_counts(self, build, procs, expected):
        assert len(enumerate_space(build(), procs)) == expected

    def test_space_is_canonical_and_sorted(self):
        stmt = matmul(64)
        space = enumerate_space(stmt, 8)
        assert [d.key() for d in space] == sorted(d.key() for d in space)
        assert all(normalize(stmt, d) == d for d in space)

    def test_space_contains_fig9_families(self):
        space = enumerate_space(matmul(256), 16)
        # Cannon: square grid, both inputs tiled, rotation by both dims.
        assert normalize(matmul(256), cannon_decision((4, 4))) in space
        # SUMMA: same but broadcast steps.
        summa = Decision(
            grid=(4, 4), dist=("i", "j"), seq="k", steps_dim=0,
            rotate=(), tiled=("B", "C"), step_comm=("B", "C"),
            leaf="gemm",
        )
        assert normalize(matmul(256), summa) in space
        # Johnson: 3-D grid, reduction distributed, output on a face.
        johnson = Decision(
            grid=(4, 2, 2), dist=("i", "j", "k"),
            output_style="face", leaf="gemm",
        )
        assert normalize(matmul(256), johnson) in space


class TestFormats:
    def test_cannon_formats_fully_tiled(self):
        fmts = formats_for(matmul(64), cannon_decision())
        assert fmts["A"].notation() == "ab -> ab"
        assert fmts["B"].notation() == "ab -> ab"
        assert fmts["C"].notation() == "ab -> ab"

    def test_pull_formats_replicate(self):
        d = Decision(grid=(2, 2), dist=("i", "j"))
        fmts = formats_for(matmul(64), d)
        assert fmts["B"].notation() == "ab -> a*"
        assert fmts["C"].notation() == "ab -> *b"

    def test_output_face_vs_replicate(self):
        face = Decision(grid=(2, 2), dist=("i", "k"), output_style="face")
        repl = Decision(
            grid=(2, 2), dist=("i", "k"), output_style="replicate"
        )
        assert formats_for(matmul(64), face)["A"].notation() == "ab -> a0"
        assert formats_for(matmul(64), repl)["A"].notation() == "ab -> a*"


class TestRealize:
    def test_replays_byte_identically(self):
        d = normalize(matmul(64), cannon_decision())
        plans, formats = [], []
        for _ in range(2):
            stmt = matmul(64)
            machine = Machine.flat(2, 2)
            sched, fmts = realize(stmt, machine, d)
            plans.append(compile_kernel(sched, machine).plan.pretty())
            formats.append({n: f.notation() for n, f in fmts.items()})
        assert plans[0] == plans[1]
        assert formats[0] == formats[1]

    def test_heuristic_seed_replays_auto_schedule(self):
        """The seed decision realizes to exactly the heuristic's plan."""
        machine = Machine.flat(2, 2)
        seed = from_heuristic(matmul(64), (2, 2))
        stmt = matmul(64)
        sched, fmts = realize(stmt, machine, seed)
        tuned_plan = compile_kernel(sched, machine).plan.pretty()
        ref_stmt = matmul(64)
        ref = auto_schedule(ref_stmt, machine)
        ref_plan = compile_kernel(ref.schedule, machine).plan.pretty()
        assert tuned_plan == ref_plan
        assert {n: f.notation() for n, f in fmts.items()} == {
            n: f.notation() for n, f in ref.formats.items()
        }

    def test_realized_cannon_matches_reference_cost(self):
        from repro.algorithms.matmul import cannon

        machine = Machine.flat(4, 4)
        ref = cannon(machine, 256).simulate()
        stmt = matmul(256)
        sched, _ = realize(stmt, machine, cannon_decision((4, 4)))
        rep = compile_kernel(sched, machine).simulate()
        assert rep.total_time == pytest.approx(ref.total_time)
        assert rep.comm_time == pytest.approx(ref.comm_time)
        assert rep.inter_node_bytes == ref.inter_node_bytes

    def test_executes_correctly(self, rng):
        """Tuner-realized schedules stay correct (schedules only ever
        change performance)."""
        for d in (
            cannon_decision(),
            Decision(grid=(2, 2), dist=("i", "j"), seq="k", steps_dim=0,
                     tiled=("B", "C"), step_comm=("B", "C"), leaf="gemm"),
            Decision(grid=(2, 2), dist=("i", "k"),
                     output_style="replicate", leaf="loops"),
            Decision(grid=(4,), dist=("k",), leaf="gemm"),
        ):
            stmt = matmul(16)
            d = normalize(stmt, d)
            machine = Machine.flat(*d.grid)
            sched, _ = realize(stmt, machine, d)
            kern = compile_kernel(sched, machine)
            kern.execute(
                {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
                verify=True,
            )

    def test_grid_mismatch_raises(self):
        stmt = matmul(64)
        with pytest.raises(ScheduleError):
            realize(stmt, Machine.flat(4, 4), cannon_decision((2, 2)))


class TestCoarsen:
    def test_shrinks_toward_target_keeping_shape(self):
        d = Decision(grid=(32, 32), dist=("i", "j"))
        assert coarsen(d, 64).grid == (8, 8)
        skew = Decision(grid=(2, 512), dist=("i", "j"))
        assert coarsen(skew, 64).grid == (2, 32)

    def test_noop_when_small_enough(self):
        d = Decision(grid=(4, 4), dist=("i", "j"))
        assert coarsen(d, 64) is not None
        assert coarsen(d, 64).grid == (4, 4)

    def test_scale_assignment_preserves_structure(self):
        stmt = matmul(1024)
        small = scale_assignment(stmt, 0.25)
        assert small.lhs.tensor.shape == (256, 256)
        assert repr(small) == repr(stmt).replace("1024", "1024")  # structure
        assert [v.name for v in small.all_vars] == ["i", "j", "k"]
        # never upscales
        same = scale_assignment(stmt, 4.0)
        assert same.lhs.tensor.shape == (1024, 1024)
