"""The public entry points: Kernel.autoschedule, Kernel.tune, the CLI."""

import json

import pytest

from repro import Grid, Kernel, Machine, Schedule, compile_kernel
from repro.machine.cluster import Cluster
from repro.tuner.search import TuneResult
from repro.tuner.space import realize
from repro.tuner.workloads import matmul


class TestAutoschedule:
    def test_compiles_the_heuristic(self, rng):
        stmt = matmul(16)
        kern = Kernel.autoschedule(stmt, Machine.flat(2, 2))
        assert isinstance(kern, Kernel)
        kern.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
            verify=True,
        )

    def test_matches_auto_schedule_module(self):
        from repro.core.autoschedule import auto_schedule

        machine = Machine.flat(2, 2)
        kern = Kernel.autoschedule(matmul(64), machine)
        ref = auto_schedule(matmul(64), machine)
        assert kern.plan.pretty() == compile_kernel(
            ref.schedule, machine
        ).plan.pretty()

    def test_gpu_machines_default_to_framebuffer(self):
        from repro.machine.cluster import MemoryKind

        cluster = Cluster.gpu_cluster(1)
        machine = Machine(cluster, Grid(2, 2))
        kern = Kernel.autoschedule(matmul(64), machine)
        for tensor in kern.plan.tensors.values():
            assert tensor.format.memory is MemoryKind.GPU_FB


class TestKernelTune:
    def test_accepts_cluster(self):
        result = Kernel.tune(matmul(1024), Cluster.cpu_cluster(2))
        assert isinstance(result, TuneResult)
        assert isinstance(result.schedule, Schedule)
        assert result.search.best.cost <= result.search.seed_outcome.cost

    def test_accepts_machine_and_seeds_its_grid(self):
        cluster = Cluster.cpu_cluster(2)
        machine = Machine(cluster, Grid(4, 1))
        result = Kernel.tune(matmul(1024), machine)
        assert result.search.seed_outcome.decision.grid in ((4, 1), (1, 4))

    def test_rejects_hierarchical_machines(self):
        cluster = Cluster.gpu_cluster(4)
        machine = Machine(cluster, Grid(2, 2), Grid(2, 2))
        with pytest.raises(ValueError):
            Kernel.tune(matmul(1024), machine)

    def test_result_replays_from_decision_vector(self):
        """The returned schedule is an ordinary Schedule + formats that
        replay byte-identically from the decision vector alone."""
        result = Kernel.tune(matmul(1024), Cluster.cpu_cluster(2))
        replay_stmt = matmul(1024)
        sched, fmts = realize(
            replay_stmt, result.machine, result.decision
        )
        replay_plan = compile_kernel(sched, result.machine).plan.pretty()
        assert replay_plan == result.kernel.plan.pretty()
        assert {n: f.notation() for n, f in fmts.items()} == {
            n: f.notation() for n, f in result.formats.items()
        }

    def test_tuned_kernel_is_executable(self, rng):
        result = Kernel.tune(matmul(16), Cluster.cpu_cluster(2))
        result.kernel.execute(
            {"B": rng.random((16, 16)), "C": rng.random((16, 16))},
            verify=True,
        )

    def test_describe_mentions_costs(self):
        result = Kernel.tune(matmul(1024), Cluster.cpu_cluster(2))
        text = result.describe()
        assert "heuristic seed" in text
        assert "best" in text
        assert "format A" in text


class TestCli:
    def test_demo_smoke(self, capsys, tmp_path, monkeypatch):
        from repro.tune import main

        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        assert main(["--demo", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "heuristic cost" in out
        assert "tuned cost" in out
        records = json.loads(log.read_text())
        assert records[-1]["name"] == "tune:matmul"
        assert "tuned_cost_s" in records[-1]["metrics"]

    def test_ledger_roundtrip_through_cli(self, tmp_path, monkeypatch):
        from repro.tune import main

        monkeypatch.setenv(
            "REPRO_BENCH_LOG", str(tmp_path / "bench.json")
        )
        ledger = tmp_path / "ledger.json"
        args = [
            "--workload", "matmul", "--nodes", "2", "--size", "1024",
            "--ledger", str(ledger),
        ]
        assert main(args) == 0
        data = json.loads(ledger.read_text())
        first = len(data["entries"])
        assert first > 0
        assert main(args) == 0
        assert len(json.loads(ledger.read_text())["entries"]) == first

    def test_pipeline_smoke(self, capsys, tmp_path, monkeypatch):
        from repro.tune import main

        log = tmp_path / "BENCH_simulator.json"
        monkeypatch.setenv("REPRO_BENCH_LOG", str(log))
        args = [
            "--pipeline", "chain-matmul", "--nodes", "2",
            "--size", "1024", "--top-k", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "joint pipeline" in out
        assert "independent" in out
        records = json.loads(log.read_text())
        assert records[-1]["name"] == "tune-pipeline:chain-matmul"
        assert "joint_cost_s" in records[-1]["metrics"]


class TestCliExitCodes:
    """`python -m repro.tune` fails loudly, like `repro.bench` does."""

    def test_unwritable_ledger_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.tune import main

        monkeypatch.setenv(
            "REPRO_BENCH_LOG", str(tmp_path / "bench.json")
        )
        # /dev/null is a file, so the ledger's parent mkdir must fail.
        args = [
            "--workload", "matmul", "--nodes", "2", "--size", "1024",
            "--ledger", "/dev/null/nested/ledger.json",
        ]
        assert main(args) == 1
        assert "could not be written" in capsys.readouterr().err

    def test_oracle_simulation_failure_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        import repro.tune as tune_cli
        import repro.tuner.search as search_mod

        monkeypatch.setenv(
            "REPRO_BENCH_LOG", str(tmp_path / "bench.json")
        )
        real_tune = search_mod.tune

        def failing_tune(*args, **kwargs):
            result = real_tune(*args, **kwargs)
            result.search.errors = 3
            return result

        # The CLI routes through api.tune_request, which resolves the
        # engine from repro.tuner.search at call time — patch it there.
        monkeypatch.setattr(search_mod, "tune", failing_tune)
        args = ["--workload", "matmul", "--nodes", "2", "--size", "1024"]
        assert tune_cli.main(args) == 1
        assert "simulation(s) failed" in capsys.readouterr().err

    def test_crash_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        import repro.tune as tune_cli
        import repro.tuner.search as search_mod

        monkeypatch.setenv(
            "REPRO_BENCH_LOG", str(tmp_path / "bench.json")
        )

        def exploding_tune(*args, **kwargs):
            raise RuntimeError("oracle died")

        monkeypatch.setattr(search_mod, "tune", exploding_tune)
        args = ["--workload", "matmul", "--nodes", "2", "--size", "1024"]
        assert tune_cli.main(args) == 1
        assert "tuning run failed" in capsys.readouterr().err
