"""Unit tests for interval and rectangle arithmetic."""

import pytest

from repro.util.geometry import (
    Interval,
    Rect,
    bounding_rect,
    ceil_div,
    split_evenly,
)


class TestInterval:
    def test_point(self):
        p = Interval.point(5)
        assert p.lo == 5 and p.hi == 6
        assert p.is_point
        assert p.value == 5
        assert p.size == 1

    def test_extent(self):
        e = Interval.extent(10)
        assert e.lo == 0 and e.hi == 10
        assert e.size == 10
        assert not e.is_point

    def test_empty_normalization(self):
        e = Interval(5, 3)
        assert e.is_empty
        assert e.size == 0

    def test_value_of_non_point_raises(self):
        with pytest.raises(ValueError):
            Interval(0, 3).value

    def test_contains(self):
        outer = Interval(0, 10)
        assert outer.contains(Interval(2, 5))
        assert outer.contains(Interval(0, 10))
        assert not outer.contains(Interval(5, 11))
        assert outer.contains(Interval(7, 7))  # empty always contained

    def test_contains_value(self):
        ival = Interval(3, 7)
        assert ival.contains_value(3)
        assert ival.contains_value(6)
        assert not ival.contains_value(7)
        assert not ival.contains_value(2)

    def test_intersect(self):
        assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 3).intersect(Interval(5, 9)).is_empty

    def test_shift(self):
        assert Interval(2, 4).shift(10) == Interval(12, 14)

    def test_scale(self):
        # scale gives the interval of factor * x, not factor * bounds.
        assert Interval(1, 3).scale(4) == Interval(4, 9)
        with pytest.raises(ValueError):
            Interval(0, 1).scale(0)

    def test_minkowski_add(self):
        # x in [1,3), y in [10,12) -> x+y in [11, 14)
        assert Interval(1, 3) + Interval(10, 12) == Interval(11, 14)

    def test_add_empty(self):
        assert (Interval(1, 1) + Interval(0, 5)).is_empty

    def test_iter(self):
        assert list(Interval(2, 5)) == [2, 3, 4]

    def test_split_reconstruction(self):
        # io in [1,2), ii in [0,4) with tile 4 -> i in [4, 8)
        combined = Interval.point(1).scale(4) + Interval.extent(4)
        assert combined == Interval(4, 8)


class TestRect:
    def test_full(self):
        r = Rect.full((3, 4))
        assert r.volume == 12
        assert r.shape == (3, 4)
        assert r.dim == 2

    def test_zero_dim_rect(self):
        r = Rect(())
        assert r.volume == 1
        assert not r.is_empty

    def test_contains(self):
        outer = Rect.full((10, 10))
        inner = Rect.of(Interval(2, 5), Interval(0, 10))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_point(self):
        r = Rect.of(Interval(2, 5), Interval(1, 3))
        assert r.contains_point((2, 1))
        assert not r.contains_point((5, 1))

    def test_intersect_and_overlaps(self):
        a = Rect.of(Interval(0, 5), Interval(0, 5))
        b = Rect.of(Interval(3, 8), Interval(4, 9))
        inter = a.intersect(b)
        assert inter == Rect.of(Interval(3, 5), Interval(4, 5))
        assert a.overlaps(b)
        c = Rect.of(Interval(6, 8), Interval(0, 5))
        assert not a.overlaps(c)

    def test_as_slices(self):
        r = Rect.of(Interval(1, 3), Interval(2, 6))
        assert r.as_slices() == (slice(1, 3), slice(2, 6))

    def test_empty_volume(self):
        r = Rect.of(Interval(3, 3), Interval(0, 5))
        assert r.is_empty
        assert r.volume == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Rect.full((2,)).intersect(Rect.full((2, 2)))


class TestHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 3) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_split_evenly_exact(self):
        pieces = [split_evenly(12, 3, i) for i in range(3)]
        assert pieces == [Interval(0, 4), Interval(4, 8), Interval(8, 12)]

    def test_split_evenly_ragged(self):
        # 10 elements over 3 pieces: 4, 4, 2.
        pieces = [split_evenly(10, 3, i) for i in range(3)]
        assert [p.size for p in pieces] == [4, 4, 2]
        assert pieces[2] == Interval(8, 10)

    def test_split_evenly_more_pieces_than_elements(self):
        pieces = [split_evenly(2, 4, i) for i in range(4)]
        assert [p.size for p in pieces] == [1, 1, 0, 0]

    def test_split_evenly_bad_index(self):
        with pytest.raises(ValueError):
            split_evenly(10, 3, 3)

    def test_bounding_rect(self):
        rects = [
            Rect.of(Interval(0, 2), Interval(5, 6)),
            Rect.of(Interval(4, 8), Interval(0, 3)),
        ]
        assert bounding_rect(rects) == Rect.of(Interval(0, 8), Interval(0, 6))

    def test_bounding_rect_ignores_empty(self):
        rects = [Rect.of(Interval(3, 3)), Rect.of(Interval(1, 2))]
        assert bounding_rect(rects) == Rect.of(Interval(1, 2))
        assert bounding_rect([Rect.of(Interval(3, 3))]) is None
